//! The app generator: draws a plan from the grammar, then materializes it
//! into runnable [`TestCase`]s plus machine-derived ground truth.
//!
//! Ground truth falls out of construction: each builder *plants* specific
//! synchronization operations, so it can enumerate exactly which trace-level
//! operations legitimately evidence each happens-before edge (a
//! [`SyncGroup`]) and which accesses race. Generation is a pure function of
//! `(GrammarConfig, seed)` — builders consume randomness only through the
//! plan, and test bodies construct all simulator state afresh per run, so
//! the same plan yields byte-identical sources and traces everywhere.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sherlock_apps::{
    app_begin, app_end, field_read, field_write, lib_site, GroundTruth, SyncGroup,
};
use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{
    ConcurrentMap, CountdownEvent, ImplicitMonitor, Monitor, Phaser, SimThread, StaticCtor, Task,
    TracedVar,
};
use sherlock_sim::testutil::Gen;
use sherlock_sim::SimConfig;
use sherlock_trace::{OpId, OpRef, Time};

use crate::grammar::{GrammarConfig, Idiom};

const MONITOR: &str = "System.Threading.Monitor";
const THREAD: &str = "System.Threading.Thread";
const TASK: &str = "System.Threading.Tasks.Task";
const DICTIONARY: &str = "System.Collections.Concurrent.ConcurrentDictionary";
const COUNTDOWN: &str = "System.Threading.CountdownEvent";
const PHASER: &str = "System.Threading.Phaser";
const IMPLICIT: &str = "Expresso.ImplicitMonitor";

/// One idiom instance inside an app's plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdiomInstance {
    /// Which pattern to plant.
    pub idiom: Idiom,
    /// Per-app instance number; part of the generated class names, so a
    /// sub-plan (shrinking) keeps the surviving instances' identities.
    pub index: usize,
    /// Worker-thread count (builders clamp to each idiom's needs).
    pub workers: u32,
    /// Loop-iteration count (ditto).
    pub iters: u32,
}

/// A drawn-but-not-yet-materialized app: the only randomness carrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppPlan {
    /// The seed the plan was drawn from; also pins the app's simulator and
    /// solver seeds during scoring.
    pub seed: u64,
    /// The idiom instances to compose.
    pub instances: Vec<IdiomInstance>,
}

/// A materialized app: runnable tests plus ground truth derived from
/// construction.
pub struct GeneratedApp {
    /// Stable identifier, `fleet-<seed hex>`.
    pub id: String,
    /// The plan's seed.
    pub seed: u64,
    /// One test per idiom instance.
    pub tests: Vec<TestCase>,
    /// Machine-derived ground truth (sync groups, racy ops, annotations).
    pub truth: GroundTruth,
    /// The idiom that planted each `truth.sync_groups` entry (parallel).
    pub group_idioms: Vec<Idiom>,
    /// Class name → planting idiom, for attributing inferred ops.
    pub class_idioms: BTreeMap<String, Idiom>,
    /// The instances that were materialized.
    pub instances: Vec<IdiomInstance>,
    /// Deterministic pseudo-source listing (plan + planted groups), the
    /// subject of the byte-identity determinism property.
    pub source: String,
}

impl GeneratedApp {
    /// The idiom a static operation belongs to, by its class name.
    pub fn idiom_of(&self, op: OpId) -> Option<Idiom> {
        self.class_idioms.get(op.resolve().class()).copied()
    }

    /// Runs every test once under seeds derived from `sim_seed` and folds
    /// the traces' [stable hashes](sherlock_trace::Trace::stable_hash) into
    /// one digest — the cross-process determinism witness.
    pub fn trace_hash(&self, sim_seed: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, t) in self.tests.iter().enumerate() {
            let run = t.run(SimConfig::with_seed(sim_seed.wrapping_add(i as u64)));
            h ^= run.trace.stable_hash();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Draws an app's shape from the grammar. Pure in `(cfg, seed)`.
pub fn plan(cfg: &GrammarConfig, seed: u64) -> AppPlan {
    // Decouple the plan stream from simulator seeds (which also start at
    // small integers) so fleet index i and sim seed i never correlate.
    let mut g = Gen::new(seed ^ 0xf1ee_7000_0000_0001);
    let n = g.usize_in(cfg.min_idioms, cfg.max_idioms + 1);
    let total = cfg.total_weight();
    let mut instances = Vec::with_capacity(n);
    for index in 0..n {
        let mut roll = g.u64_in(0, total);
        let mut idiom = Idiom::MonitorLock;
        for &(i, w) in &cfg.weights {
            if roll < u64::from(w) {
                idiom = i;
                break;
            }
            roll -= u64::from(w);
        }
        instances.push(IdiomInstance {
            idiom,
            index,
            workers: g.u64_in(2, u64::from(cfg.max_workers.max(2)) + 1) as u32,
            iters: g.u64_in(2, u64::from(cfg.max_iters.max(2)) + 1) as u32,
        });
    }
    AppPlan { seed, instances }
}

/// Materializes a plan. Pure in the plan: sub-plans (shrinking) and
/// re-materializations yield identical apps.
pub fn materialize(p: &AppPlan) -> GeneratedApp {
    let tag = format!("Fleet{:016X}", p.seed);
    let mut parts = Parts::default();
    writeln!(parts.source, "app fleet-{:016x}", p.seed).unwrap();
    for inst in &p.instances {
        build(inst, &tag, &mut parts);
    }
    for (g, idiom) in parts.truth.sync_groups.iter().zip(&parts.group_idioms) {
        let mut names: Vec<String> = g.ops.iter().map(|op| op.resolve().to_string()).collect();
        names.sort();
        writeln!(
            parts.source,
            "group [{idiom}] {} {}: {}",
            g.role,
            g.description,
            names.join(" | ")
        )
        .unwrap();
    }
    GeneratedApp {
        id: format!("fleet-{:016x}", p.seed),
        seed: p.seed,
        tests: parts.tests,
        truth: parts.truth,
        group_idioms: parts.group_idioms,
        class_idioms: parts.class_idioms,
        instances: p.instances.clone(),
        source: parts.source,
    }
}

/// Draws and materializes one app.
pub fn generate(cfg: &GrammarConfig, seed: u64) -> GeneratedApp {
    materialize(&plan(cfg, seed))
}

/// Generates `count` apps whose seeds derive from `base_seed` via one
/// SplitMix64 stream — app `i` depends only on `(cfg, base_seed, i)`.
pub fn generate_fleet(cfg: &GrammarConfig, count: usize, base_seed: u64) -> Vec<GeneratedApp> {
    let mut g = Gen::new(base_seed);
    (0..count).map(|_| generate(cfg, g.u64())).collect()
}

#[derive(Default)]
struct Parts {
    tests: Vec<TestCase>,
    truth: GroundTruth,
    group_idioms: Vec<Idiom>,
    class_idioms: BTreeMap<String, Idiom>,
    source: String,
}

impl Parts {
    /// Registers a sync group, deduplicating exact (role, ops) repeats —
    /// instances of the same idiom share their library-site groups.
    fn group(&mut self, idiom: Idiom, description: &str, role: Role, ops: Vec<OpId>) {
        let mut key = ops.clone();
        key.sort_unstable();
        let dup = self.truth.sync_groups.iter().any(|g| {
            let mut existing = g.ops.clone();
            existing.sort_unstable();
            g.role == role && existing == key
        });
        if dup {
            return;
        }
        self.truth
            .sync_groups
            .push(SyncGroup::new(description, role, ops));
        self.group_idioms.push(idiom);
    }

    fn class(&mut self, name: &str, idiom: Idiom) {
        self.class_idioms.entry(name.to_string()).or_insert(idiom);
    }
}

fn build(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    writeln!(
        parts.source,
        "  [{}] {} workers={} iters={}",
        inst.index, inst.idiom, inst.workers, inst.iters
    )
    .unwrap();
    match inst.idiom {
        Idiom::MonitorLock => monitor_lock(inst, tag, parts),
        Idiom::FlagSpin => flag_spin(inst, tag, parts),
        Idiom::ForkJoin => fork_join(inst, tag, parts),
        Idiom::GetOrAdd => get_or_add(inst, tag, parts),
        Idiom::LazyInit => lazy_init(inst, tag, parts),
        Idiom::Continuation => continuation(inst, tag, parts),
        Idiom::PhaserPingPong => phaser_ping_pong(inst, tag, parts),
        Idiom::ImplicitHandoff => implicit_handoff(inst, tag, parts),
        Idiom::CountdownFanIn => countdown_fan_in(inst, tag, parts),
        Idiom::SeededRace => seeded_race(inst, tag, parts),
    }
}

/// Workers increment a counter and stamp a journal under one monitor; the
/// main thread reads the total under the same lock. Two guarded fields (one
/// of them write-write) make `Enter`/`Exit` the uniquely cheapest cover.
fn monitor_lock(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Lock{}", inst.index);
    let (workers, iters) = (inst.workers.max(2), inst.iters.max(2));
    parts.class(&class, Idiom::MonitorLock);
    parts.class(MONITOR, Idiom::MonitorLock);
    parts.group(
        Idiom::MonitorLock,
        "Monitor.Exit publishes the guarded region",
        Role::Release,
        lib_site(MONITOR, "Exit"),
    );
    parts.group(
        Idiom::MonitorLock,
        "Monitor.Enter orders entry to the guarded region",
        Role::Acquire,
        lib_site(MONITOR, "Enter"),
    );
    let name = format!("{class}::locked_counters");
    parts.tests.push(TestCase::new(&name, move || {
        let mon = Monitor::new();
        let counter = TracedVar::new(&class, "counter", 0u64);
        let journal = TracedVar::new(&class, "journal", 0u64);
        let mut hs = Vec::new();
        for w in 0..workers {
            let (m2, c2, j2) = (mon.clone(), counter.clone(), journal.clone());
            hs.push(api::spawn(&format!("lock-w{w}"), move || {
                for i in 0..u64::from(iters) {
                    m2.with_lock(|| {
                        c2.update(|v| v + 1);
                        j2.set((u64::from(w) << 32) | i);
                    });
                }
            }));
        }
        for h in hs {
            h.join();
        }
        let (total, _stamp) = mon.with_lock(|| (counter.get(), journal.get()));
        assert_eq!(total, u64::from(workers) * u64::from(iters));
    }));
}

/// A producer publishes a payload then raises a volatile flag; the main
/// thread spins on the flag and reads the payload (paper Fig. 3.A).
fn flag_spin(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Flag{}", inst.index);
    parts.class(&class, Idiom::FlagSpin);
    parts.group(
        Idiom::FlagSpin,
        "volatile ready-flag write publishes the payload",
        Role::Release,
        field_write(&class, "ready"),
    );
    parts.group(
        Idiom::FlagSpin,
        "ready-flag spin read acquires the payload",
        Role::Acquire,
        field_read(&class, "ready"),
    );
    parts
        .truth
        .volatile_fields
        .push((class.clone(), "ready".to_string()));
    // Tracing stamps a read *before* yielding to the scheduler, so on some
    // schedules the consumer's successful flag read is timestamped before
    // the producer's flag write — the (write → read) flag window never
    // forms, and coverage of the payload window then forces the payload
    // pair itself into the solution. Ops of this class outside the flag
    // groups are therefore instrumentation artifacts, not plain false
    // positives (the paper's Table-2 "Instr. Errors" column).
    parts.truth.hidden_classes.insert(class.clone());
    let name = format!("{class}::flag_handoff");
    parts.tests.push(TestCase::new(&name, move || {
        let payload = TracedVar::new(&class, "payload", 0u64);
        let ready = TracedVar::new(&class, "ready", 0u32);
        let (p2, r2) = (payload.clone(), ready.clone());
        let h = api::spawn("flag-producer", move || {
            api::sleep(Time::from_micros(250));
            p2.set(42);
            r2.set(1);
        });
        ready.spin_until(Time::from_micros(40), |v| v == 1);
        assert_eq!(payload.get(), 42);
        h.join();
    }));
}

/// `Thread.Start` hands an input to the delegate; `Thread.Join` collects
/// its output. Single-shot edges, so the payload endpoints themselves are
/// acceptable evidence (the window boundary *is* the conflicting access).
fn fork_join(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Fj{}", inst.index);
    parts.class(&class, Idiom::ForkJoin);
    parts.class(THREAD, Idiom::ForkJoin);
    parts.group(
        Idiom::ForkJoin,
        "Thread.Start forks the delegate (input handoff)",
        Role::Release,
        [lib_site(THREAD, "Start"), field_write(&class, "input")].concat(),
    );
    parts.group(
        Idiom::ForkJoin,
        "delegate entry acquires the input",
        Role::Acquire,
        [app_begin(&class, "Run"), field_read(&class, "input")].concat(),
    );
    parts.group(
        Idiom::ForkJoin,
        "delegate exit publishes the output",
        Role::Release,
        [app_end(&class, "Run"), field_write(&class, "output")].concat(),
    );
    parts.group(
        Idiom::ForkJoin,
        "Thread.Join acquires the output",
        Role::Acquire,
        [lib_site(THREAD, "Join"), field_read(&class, "output")].concat(),
    );
    parts
        .truth
        .delegates
        .push((class.clone(), "Run".to_string()));
    let name = format!("{class}::fork_join");
    parts.tests.push(TestCase::new(&name, move || {
        let input = TracedVar::new(&class, "input", 0u64);
        let output = TracedVar::new(&class, "output", 0u64);
        input.set(41);
        let (i2, o2) = (input.clone(), output.clone());
        let t = SimThread::start(&class, "Run", move || {
            o2.set(i2.get() + 1);
        });
        t.join();
        assert_eq!(output.get(), 42);
    }));
}

/// Racing workers memoize through `GetOrAdd`; exactly one factory runs and
/// fills two cache fields every worker then reads.
fn get_or_add(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Memo{}", inst.index);
    let factory = "<GetValue>b__0";
    let workers = inst.workers.max(2);
    parts.class(&class, Idiom::GetOrAdd);
    parts.class(DICTIONARY, Idiom::GetOrAdd);
    parts.group(
        Idiom::GetOrAdd,
        "factory-delegate completion (or the GetOrAdd return wrapping it) publishes the caches",
        Role::Release,
        [
            app_end(&class, factory),
            vec![OpRef::lib_end(DICTIONARY, "GetOrAdd").intern()],
            field_write(&class, "cachedA"),
            field_write(&class, "cachedB"),
        ]
        .concat(),
    );
    parts.group(
        Idiom::GetOrAdd,
        "GetOrAdd (or the first cached read behind it) acquires the winner's caches",
        Role::Acquire,
        [
            lib_site(DICTIONARY, "GetOrAdd"),
            field_read(&class, "cachedA"),
            field_read(&class, "cachedB"),
        ]
        .concat(),
    );
    let name = format!("{class}::memoize");
    parts.tests.push(TestCase::new(&name, move || {
        let map: ConcurrentMap<u64, u64> = ConcurrentMap::new();
        let cache_a = TracedVar::new(&class, "cachedA", 0u64);
        let cache_b = TracedVar::new(&class, "cachedB", 0u64);
        let mut hs = Vec::new();
        for w in 0..workers {
            let (m2, a2, b2) = (map.clone(), cache_a.clone(), cache_b.clone());
            let c2 = class.clone();
            hs.push(api::spawn(&format!("memo-w{w}"), move || {
                api::sleep(Time::from_micros(80 * u64::from(w)));
                let v = m2.get_or_add(7, &c2, "<GetValue>b__0", || {
                    a2.set(10);
                    b2.set(32);
                    42
                });
                assert_eq!(v, 42);
                assert_eq!(a2.get() + b2.get(), 42);
            }));
        }
        for h in hs {
            h.join();
        }
    }));
}

/// A static constructor initializes two settings exactly once; racing
/// readers call a traced `Get` accessor after `ensure`.
fn lazy_init(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Config{}", inst.index);
    let workers = inst.workers.max(2);
    parts.class(&class, Idiom::LazyInit);
    parts.group(
        Idiom::LazyInit,
        ".cctor completion publishes the initialized statics",
        Role::Release,
        app_end(&class, ".cctor"),
    );
    parts.group(
        Idiom::LazyInit,
        "accessor entry after initialization acquires the statics",
        Role::Acquire,
        app_begin(&class, "Get"),
    );
    let name = format!("{class}::lazy_init");
    parts.tests.push(TestCase::new(&name, move || {
        let ctor = StaticCtor::new(&class);
        let a = TracedVar::new(&class, "settingA", 0u64);
        let b = TracedVar::new(&class, "settingB", 0u64);
        let mut hs = Vec::new();
        for w in 0..workers {
            let (ct2, a2, b2) = (ctor.clone(), a.clone(), b.clone());
            let c2 = class.clone();
            hs.push(api::spawn(&format!("cfg-w{w}"), move || {
                api::sleep(Time::from_micros(60 * u64::from(w)));
                ct2.ensure(|| {
                    a2.set(6);
                    b2.set(36);
                });
                let sum = api::app_method(&c2, "Get", ct2.object(), || a2.get() + b2.get());
                assert_eq!(sum, 42);
            }));
        }
        for h in hs {
            h.join();
        }
    }));
}

/// A two-stage `ContinueWith` pipeline; stage boundaries are single-shot
/// edges, so payload endpoints are acceptable evidence alongside the
/// delegate entry/exit ops.
fn continuation(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Pipe{}", inst.index);
    let (stage1, stage2) = ("<Stage1>b__0", "<Stage2>b__1");
    parts.class(&class, Idiom::Continuation);
    parts.class(TASK, Idiom::Continuation);
    parts.group(
        Idiom::Continuation,
        "stage-1 delegate exit publishes stageA",
        Role::Release,
        [app_end(&class, stage1), field_write(&class, "stageA")].concat(),
    );
    parts.group(
        Idiom::Continuation,
        "continuation entry acquires stageA",
        Role::Acquire,
        [app_begin(&class, stage2), field_read(&class, "stageA")].concat(),
    );
    parts.group(
        Idiom::Continuation,
        "stage-2 delegate exit publishes stageB",
        Role::Release,
        [app_end(&class, stage2), field_write(&class, "stageB")].concat(),
    );
    parts.group(
        Idiom::Continuation,
        "Task.Wait acquires the pipeline result",
        Role::Acquire,
        [lib_site(TASK, "Wait"), field_read(&class, "stageB")].concat(),
    );
    let name = format!("{class}::pipeline");
    parts.tests.push(TestCase::new(&name, move || {
        let a = TracedVar::new(&class, "stageA", 0u64);
        let b = TracedVar::new(&class, "stageB", 0u64);
        let a2 = a.clone();
        let t1 = Task::run(&class, "<Stage1>b__0", move || a2.set(20));
        let (a3, b2) = (a.clone(), b.clone());
        let t2 = t1.continue_with(&class, "<Stage2>b__1", move || b2.set(a3.get() + 22));
        t2.wait();
        assert_eq!(b.get(), 42);
    }));
}

/// Ping-pong phaser: producers write their slot then `Arrive` on the
/// forward phaser; the main thread `AwaitAdvance`s, reads every slot, and
/// `Arrive`s on the back phaser to release the next phase.
fn phaser_ping_pong(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Phase{}", inst.index);
    let (producers, phases) = (inst.workers.max(2), inst.iters.max(2));
    parts.class(&class, Idiom::PhaserPingPong);
    parts.class(PHASER, Idiom::PhaserPingPong);
    parts.group(
        Idiom::PhaserPingPong,
        "Phaser.Arrive publishes this phase's writes",
        Role::Release,
        lib_site(PHASER, "Arrive"),
    );
    parts.group(
        Idiom::PhaserPingPong,
        "Phaser.AwaitAdvance acquires the completed phase",
        Role::Acquire,
        lib_site(PHASER, "AwaitAdvance"),
    );
    let name = format!("{class}::phased_slots");
    parts.tests.push(TestCase::new(&name, move || {
        let fwd = Phaser::new(producers);
        let back = Phaser::new(1);
        let slots: Vec<TracedVar<u64>> = (0..producers)
            .map(|p| TracedVar::new(&class, format!("slot{p}"), 0u64))
            .collect();
        let mut hs = Vec::new();
        for p in 0..producers {
            let (f2, b2, s2) = (fwd.clone(), back.clone(), slots[p as usize].clone());
            hs.push(api::spawn(&format!("phase-p{p}"), move || {
                for phase in 0..u64::from(phases) {
                    s2.set(phase * 100 + u64::from(p) + 1);
                    f2.arrive();
                    b2.await_advance(phase);
                }
            }));
        }
        for phase in 0..u64::from(phases) {
            fwd.await_advance(phase);
            let sum: u64 = slots.iter().map(TracedVar::get).sum();
            let expect: u64 = (0..u64::from(producers)).map(|p| phase * 100 + p + 1).sum();
            assert_eq!(sum, expect);
            back.arrive();
        }
        for h in hs {
            h.join();
        }
    }));
}

/// Implicit-signal monitor handoff: the producer fills a traced cell when
/// the guard says "empty", the consumer drains it when "full"; every exit
/// implicitly re-signals all predicates.
fn implicit_handoff(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Chan{}", inst.index);
    let iters = inst.iters.max(2);
    parts.class(&class, Idiom::ImplicitHandoff);
    parts.class(IMPLICIT, Idiom::ImplicitHandoff);
    parts.group(
        Idiom::ImplicitHandoff,
        "ImplicitMonitor.Exit implicitly signals waiting predicates",
        Role::Release,
        lib_site(IMPLICIT, "Exit"),
    );
    parts.group(
        Idiom::ImplicitHandoff,
        "ImplicitMonitor.EnterWhen admits once its predicate holds",
        Role::Acquire,
        lib_site(IMPLICIT, "EnterWhen"),
    );
    let name = format!("{class}::implicit_handoff");
    parts.tests.push(TestCase::new(&name, move || {
        let mon = ImplicitMonitor::new(0);
        let cell = TracedVar::new(&class, "cell", 0u64);
        let (m2, c2) = (mon.clone(), cell.clone());
        let h = api::spawn("chan-producer", move || {
            for i in 1..=u64::from(iters) {
                m2.with_when(
                    |v| v == 0,
                    |m| {
                        c2.set(i * 3);
                        m.set_value(1);
                    },
                );
            }
        });
        for i in 1..=u64::from(iters) {
            mon.with_when(
                |v| v == 1,
                |m| {
                    assert_eq!(cell.get(), i * 3);
                    m.set_value(0);
                },
            );
        }
        h.join();
    }));
}

/// Fan-in: each worker publishes its part then `Signal`s; the main thread
/// `Wait`s for all of them before summing.
fn countdown_fan_in(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Gather{}", inst.index);
    let workers = inst.workers.max(2);
    parts.class(&class, Idiom::CountdownFanIn);
    parts.class(COUNTDOWN, Idiom::CountdownFanIn);
    parts.group(
        Idiom::CountdownFanIn,
        "CountdownEvent.Signal publishes each worker's part",
        Role::Release,
        lib_site(COUNTDOWN, "Signal"),
    );
    parts.group(
        Idiom::CountdownFanIn,
        "CountdownEvent.Wait acquires all parts",
        Role::Acquire,
        lib_site(COUNTDOWN, "Wait"),
    );
    let name = format!("{class}::fan_in");
    parts.tests.push(TestCase::new(&name, move || {
        let cd = CountdownEvent::new(workers);
        let slots: Vec<TracedVar<u64>> = (0..workers)
            .map(|w| TracedVar::new(&class, format!("part{w}"), 0u64))
            .collect();
        let mut hs = Vec::new();
        for w in 0..workers {
            let (cd2, s2) = (cd.clone(), slots[w as usize].clone());
            hs.push(api::spawn(&format!("gather-w{w}"), move || {
                api::sleep(Time::from_micros(50 * (u64::from(w) + 1)));
                s2.set(u64::from(w) + 1);
                cd2.signal();
            }));
        }
        cd.wait();
        let sum: u64 = slots.iter().map(TracedVar::get).sum();
        assert_eq!(sum, u64::from(workers) * (u64::from(workers) + 1) / 2);
        for h in hs {
            h.join();
        }
    }));
}

/// A seeded true race: two threads touch `hits` with no ordering at all.
/// No sync groups; the touched ops land in `racy_ops` so an inference that
/// "protects" them classifies DataRacy (paper Table 2), not NotSync.
fn seeded_race(inst: &IdiomInstance, tag: &str, parts: &mut Parts) {
    let class = format!("{tag}.Racy{}", inst.index);
    parts.class(&class, Idiom::SeededRace);
    for op in field_write(&class, "hits") {
        parts.truth.racy_ops.insert(op);
    }
    for op in field_read(&class, "hits") {
        parts.truth.racy_ops.insert(op);
    }
    parts.truth.race_locations.insert(format!("{class}::hits"));
    let name = format!("{class}::seeded_race");
    parts.tests.push(TestCase::new(&name, move || {
        let hits = TracedVar::new(&class, "hits", 0u64);
        let (h2, h3) = (hits.clone(), hits.clone());
        let w = api::spawn("race-writer", move || {
            h2.set(1);
        });
        let r = api::spawn("race-reader", move || {
            let v = h3.get();
            h3.set(v + 1);
        });
        w.join();
        r.join();
    }));
}
