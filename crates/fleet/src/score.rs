//! Scoring: run the full infer→perturb pipeline over generated apps and
//! grade every inferred operation against the machine-derived ground
//! truth, Table-2 style, with per-idiom precision/recall.

use std::collections::BTreeMap;

use sherlock_apps::Verdict;
use sherlock_core::{infer_seeded, InferenceReport};
use sherlock_obs::json::Json;

use crate::gen::GeneratedApp;
use crate::grammar::Idiom;

/// Table-2-style verdict counts over inferred operations.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerdictCounts {
    /// Real synchronizations ("Syncs").
    pub true_sync: usize,
    /// Seeded-race participants misread as sync ("Data Racy").
    pub data_racy: usize,
    /// Misses attributable to instrumentation hiding ("Instr. Errors").
    pub instr_error: usize,
    /// Plain false positives ("Not Sync").
    pub not_sync: usize,
}

impl VerdictCounts {
    fn add(&mut self, v: Verdict) {
        match v {
            Verdict::TrueSync => self.true_sync += 1,
            Verdict::DataRacy => self.data_racy += 1,
            Verdict::InstrError => self.instr_error += 1,
            Verdict::NotSync => self.not_sync += 1,
        }
    }

    fn merge(&mut self, o: &VerdictCounts) {
        self.true_sync += o.true_sync;
        self.data_racy += o.data_racy;
        self.instr_error += o.instr_error;
        self.not_sync += o.not_sync;
    }

    /// All inferred ops graded.
    pub fn total(&self) -> usize {
        self.true_sync + self.data_racy + self.instr_error + self.not_sync
    }

    /// TrueSync / (TrueSync + NotSync) — the paper's headline precision,
    /// which excludes data-racy and instrumentation-error columns from the
    /// denominator. `1.0` when nothing falls in either bucket.
    pub fn precision(&self) -> f64 {
        let denom = self.true_sync + self.not_sync;
        if denom == 0 {
            1.0
        } else {
            self.true_sync as f64 / denom as f64
        }
    }
}

/// Aggregated grade for one idiom class.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdiomScore {
    /// Verdicts of inferred ops attributed to this idiom.
    pub counts: VerdictCounts,
    /// Planted sync groups the report covered.
    pub groups_covered: usize,
    /// Planted sync groups in total.
    pub groups_total: usize,
}

impl IdiomScore {
    fn merge(&mut self, o: &IdiomScore) {
        self.counts.merge(&o.counts);
        self.groups_covered += o.groups_covered;
        self.groups_total += o.groups_total;
    }

    /// Fraction of planted groups evidenced by at least one inferred op.
    pub fn recall(&self) -> f64 {
        if self.groups_total == 0 {
            1.0
        } else {
            self.groups_covered as f64 / self.groups_total as f64
        }
    }
}

/// Grade for one generated app.
#[derive(Clone, Debug)]
pub struct AppScore {
    /// The app's id (`fleet-<seed hex>`).
    pub id: String,
    /// The app's seed.
    pub seed: u64,
    /// Aggregate verdicts.
    pub counts: VerdictCounts,
    /// Covered planted groups.
    pub groups_covered: usize,
    /// Total planted groups.
    pub groups_total: usize,
    /// Per-idiom breakdown.
    pub per_idiom: BTreeMap<Idiom, IdiomScore>,
    /// Inferred ops from classes no idiom claims (should stay 0).
    pub unattributed: usize,
}

/// Grade for a whole fleet.
#[derive(Clone, Debug, Default)]
pub struct FleetScore {
    /// Per-app grades, in scoring order.
    pub apps: Vec<AppScore>,
    /// Per-idiom aggregate.
    pub per_idiom: BTreeMap<Idiom, IdiomScore>,
    /// Fleet-wide verdict counts.
    pub counts: VerdictCounts,
    /// Fleet-wide covered groups.
    pub groups_covered: usize,
    /// Fleet-wide total groups.
    pub groups_total: usize,
    /// Fleet-wide unattributed inferred ops.
    pub unattributed: usize,
}

impl FleetScore {
    /// Fleet-wide precision (see [`VerdictCounts::precision`]).
    pub fn precision(&self) -> f64 {
        self.counts.precision()
    }

    /// Fleet-wide recall: covered groups over planted groups.
    pub fn recall(&self) -> f64 {
        if self.groups_total == 0 {
            1.0
        } else {
            self.groups_covered as f64 / self.groups_total as f64
        }
    }

    fn absorb(&mut self, app: AppScore) {
        self.counts.merge(&app.counts);
        self.groups_covered += app.groups_covered;
        self.groups_total += app.groups_total;
        self.unattributed += app.unattributed;
        for (idiom, s) in &app.per_idiom {
            self.per_idiom.entry(*idiom).or_default().merge(s);
        }
        self.apps.push(app);
    }

    /// A fixed-width per-idiom table plus the fleet-wide summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>6} {:>5} {:>5} {:>5} {:>5} {:>7} {:>9} {:>7}\n",
            "idiom", "infer", "TS", "DR", "IE", "NS", "prec", "cov/tot", "recall"
        ));
        out.push_str(&"-".repeat(74));
        out.push('\n');
        for (idiom, s) in &self.per_idiom {
            out.push_str(&format!(
                "{:<18} {:>6} {:>5} {:>5} {:>5} {:>5} {:>7.3} {:>4}/{:<4} {:>7.3}\n",
                idiom.name(),
                s.counts.total(),
                s.counts.true_sync,
                s.counts.data_racy,
                s.counts.instr_error,
                s.counts.not_sync,
                s.counts.precision(),
                s.groups_covered,
                s.groups_total,
                s.recall(),
            ));
        }
        out.push_str(&"-".repeat(74));
        out.push('\n');
        out.push_str(&format!(
            "{:<18} {:>6} {:>5} {:>5} {:>5} {:>5} {:>7.3} {:>4}/{:<4} {:>7.3}\n",
            format!("fleet ({} apps)", self.apps.len()),
            self.counts.total(),
            self.counts.true_sync,
            self.counts.data_racy,
            self.counts.instr_error,
            self.counts.not_sync,
            self.precision(),
            self.groups_covered,
            self.groups_total,
            self.recall(),
        ));
        if self.unattributed > 0 {
            out.push_str(&format!(
                "warning: {} inferred ops from classes no idiom claims\n",
                self.unattributed
            ));
        }
        out
    }

    /// The machine-readable score document (CI artifact / bench output).
    pub fn to_json(&self) -> Json {
        let idiom_json = |s: &IdiomScore| {
            Json::Obj(vec![
                ("inferred".to_string(), Json::from(s.counts.total())),
                ("true_sync".to_string(), Json::from(s.counts.true_sync)),
                ("data_racy".to_string(), Json::from(s.counts.data_racy)),
                ("instr_error".to_string(), Json::from(s.counts.instr_error)),
                ("not_sync".to_string(), Json::from(s.counts.not_sync)),
                ("precision".to_string(), Json::from(s.counts.precision())),
                ("groups_covered".to_string(), Json::from(s.groups_covered)),
                ("groups_total".to_string(), Json::from(s.groups_total)),
                ("recall".to_string(), Json::from(s.recall())),
            ])
        };
        Json::Obj(vec![
            ("apps".to_string(), Json::from(self.apps.len())),
            ("precision".to_string(), Json::from(self.precision())),
            ("recall".to_string(), Json::from(self.recall())),
            ("true_sync".to_string(), Json::from(self.counts.true_sync)),
            ("data_racy".to_string(), Json::from(self.counts.data_racy)),
            (
                "instr_error".to_string(),
                Json::from(self.counts.instr_error),
            ),
            ("not_sync".to_string(), Json::from(self.counts.not_sync)),
            (
                "groups_covered".to_string(),
                Json::from(self.groups_covered),
            ),
            ("groups_total".to_string(), Json::from(self.groups_total)),
            ("unattributed".to_string(), Json::from(self.unattributed)),
            (
                "per_idiom".to_string(),
                Json::Obj(
                    self.per_idiom
                        .iter()
                        .map(|(i, s)| (i.name().to_string(), idiom_json(s)))
                        .collect(),
                ),
            ),
            (
                "per_app".to_string(),
                Json::Arr(
                    self.apps
                        .iter()
                        .map(|a| {
                            Json::Obj(vec![
                                ("id".to_string(), Json::from(a.id.as_str())),
                                ("true_sync".to_string(), Json::from(a.counts.true_sync)),
                                ("not_sync".to_string(), Json::from(a.counts.not_sync)),
                                ("data_racy".to_string(), Json::from(a.counts.data_racy)),
                                ("groups_covered".to_string(), Json::from(a.groups_covered)),
                                ("groups_total".to_string(), Json::from(a.groups_total)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Grades a finished inference report against one app's ground truth.
pub fn evaluate(app: &GeneratedApp, report: &InferenceReport) -> AppScore {
    let mut score = AppScore {
        id: app.id.clone(),
        seed: app.seed,
        counts: VerdictCounts::default(),
        groups_covered: 0,
        groups_total: 0,
        per_idiom: BTreeMap::new(),
        unattributed: 0,
    };
    for io in &report.inferred {
        let v = app.truth.classify(io.op, io.role);
        score.counts.add(v);
        // Attribute: a TrueSync op belongs to the group that claims it;
        // anything else belongs to whatever idiom owns the op's class.
        let idiom = if matches!(v, Verdict::TrueSync) {
            app.truth
                .sync_groups
                .iter()
                .position(|g| g.matches(io.op, io.role))
                .map(|i| app.group_idioms[i])
        } else {
            app.idiom_of(io.op)
        };
        match idiom {
            Some(i) => score.per_idiom.entry(i).or_default().counts.add(v),
            None => score.unattributed += 1,
        }
    }
    for (g, &idiom) in app.truth.sync_groups.iter().zip(&app.group_idioms) {
        let covered = report.inferred.iter().any(|io| g.matches(io.op, io.role));
        let s = score.per_idiom.entry(idiom).or_default();
        s.groups_total += 1;
        score.groups_total += 1;
        if covered {
            s.groups_covered += 1;
            score.groups_covered += 1;
        }
    }
    score
}

/// Runs inference over one app (seeded by the app itself) and grades it.
///
/// # Errors
///
/// Returns the solver's error message, prefixed with the app id.
pub fn score_app(app: &GeneratedApp, rounds: usize) -> Result<AppScore, String> {
    let report =
        infer_seeded(&app.tests, rounds, app.seed).map_err(|e| format!("{}: {e:?}", app.id))?;
    Ok(evaluate(app, &report))
}

/// Runs inference over every app and aggregates the grades.
///
/// # Errors
///
/// Fails on the first app whose LP does not solve.
pub fn score_fleet(apps: &[GeneratedApp], rounds: usize) -> Result<FleetScore, String> {
    let mut fleet = FleetScore::default();
    for app in apps {
        fleet.absorb(score_app(app, rounds)?);
    }
    Ok(fleet)
}
