//! Differential FastTrack oracle over a sampled generated fleet.
//!
//! For every sampled app, FastTrack runs under the app's complete
//! ground-truth spec and under the spec inferred by the full pipeline; the
//! two must agree on every seeded-race location (inference may *abstain* by
//! declaring the racy accesses as sync — the Table-2 "Data Racy" column —
//! but it must never invent a happens-before edge that masks a race the
//! ground spec detects). A failing sample shrinks to the minimal app still
//! disagreeing.

use sherlock_core::infer_seeded;
use sherlock_fleet::{generate_fleet, materialize, plan, AppPlan, GeneratedApp, GrammarConfig};
use sherlock_racer::{differential, DifferentialReport, SyncSpec};
use sherlock_sim::testutil::{check, shrink_vec, Config};
use sherlock_sim::SimConfig;

const ROUNDS: usize = 2;

/// Runs the oracle for one app: observe every test once, infer, compare.
fn oracle(app: &GeneratedApp) -> Result<DifferentialReport, String> {
    let runs: Vec<_> = app
        .tests
        .iter()
        .enumerate()
        .map(|(i, t)| t.run(SimConfig::with_seed(app.seed.wrapping_add(i as u64))))
        .collect();
    let traces: Vec<_> = runs.iter().map(|r| &r.trace).collect();
    let report =
        infer_seeded(&app.tests, ROUNDS, app.seed).map_err(|e| format!("{}: {e:?}", app.id))?;
    Ok(differential(
        &traces,
        &app.truth.full_spec(),
        &SyncSpec::from_report(&report),
        &app.truth.race_locations,
    ))
}

#[test]
fn sampled_fleet_has_zero_disagreements() {
    sherlock_sim::install_sim_panic_hook();
    let cfg = GrammarConfig::default();
    check(
        &Config {
            // Each case is a full infer→perturb pipeline; a handful of
            // random apps samples the grammar without dominating the suite.
            cases: 6,
            ..Config::default()
        },
        |g| plan(&cfg, g.u64()),
        |p| {
            shrink_vec(&p.instances)
                .into_iter()
                .map(|instances| AppPlan {
                    seed: p.seed,
                    instances,
                })
                .collect()
        },
        |p| {
            let rep = oracle(&materialize(p))?;
            if rep.agrees() {
                Ok(())
            } else {
                Err(format!("oracle disagrees:\n{}", rep.render()))
            }
        },
    );
}

#[test]
fn merged_fleet_report_stays_clean() {
    sherlock_sim::install_sim_panic_hook();
    let apps = generate_fleet(&GrammarConfig::default(), 4, 0xd1ff);
    let mut merged = DifferentialReport::default();
    let mut expected_traces = 0;
    for app in &apps {
        let rep = oracle(app).expect("app solves");
        expected_traces += rep.traces;
        merged.merge(rep);
    }
    assert_eq!(merged.traces, expected_traces);
    assert!(
        merged.agrees(),
        "merged fleet oracle disagrees:\n{}",
        merged.render()
    );
    // Witness indices stay within the merged trace range.
    for d in &merged.disagreements {
        assert!(d.first_trace < merged.traces);
    }
}
