//! Property: generation is a pure function of `(GrammarConfig, seed)`.
//!
//! The same plan must materialize to a byte-identical source listing and an
//! identical trace hash every time, from any OS thread — the fleet's CI
//! gate, golden corpus, and bench sweep all assume app `i` of seed `s` is
//! the same program everywhere. Failures shrink to the smallest instance
//! subset that still diverges.

use sherlock_fleet::{materialize, plan, AppPlan, GrammarConfig};
use sherlock_sim::testutil::{check, shrink_vec, Config};

#[test]
fn generation_is_deterministic_per_seed() {
    sherlock_sim::install_sim_panic_hook();
    let cfg = GrammarConfig::default();
    check(
        &Config {
            // Each case runs every test of the app several times (including
            // once per probe thread); a dozen random shapes keeps the suite
            // fast while still sweeping the idiom mix.
            cases: 12,
            ..Config::default()
        },
        |g| plan(&cfg, g.u64()),
        |p| {
            shrink_vec(&p.instances)
                .into_iter()
                .map(|instances| AppPlan {
                    seed: p.seed,
                    instances,
                })
                .collect()
        },
        |p| {
            let a = materialize(p);
            let b = materialize(p);
            if a.source != b.source {
                return Err("re-materializing the same plan changed the source".into());
            }
            if !p.instances.is_empty() && a.tests.is_empty() {
                return Err("non-empty plan materialized no tests".into());
            }
            let sim_seed = p.seed ^ 0x51;
            let expected = a.trace_hash(sim_seed);
            if b.trace_hash(sim_seed) != expected {
                return Err("same-thread re-run changed the trace hash".into());
            }
            // Fresh materializations on other OS threads — host-thread
            // identity and scheduling must not leak into the traces.
            let divergent = std::thread::scope(|s| {
                let probes: Vec<_> = (0..3)
                    .map(|_| {
                        let p = p.clone();
                        s.spawn(move || materialize(&p).trace_hash(sim_seed))
                    })
                    .collect();
                probes
                    .into_iter()
                    .map(|h| h.join().expect("probe thread"))
                    .filter(|&h| h != expected)
                    .count()
            });
            if divergent > 0 {
                return Err(format!(
                    "{divergent} cross-thread run(s) produced a different trace hash"
                ));
            }
            Ok(())
        },
    );
}

/// The fleet-level stream is deterministic too: same `(config, count,
/// base_seed)` draws the same app seeds in the same order, and a prefix of a
/// larger fleet is itself the smaller fleet.
#[test]
fn fleet_streams_are_prefix_stable() {
    let cfg = GrammarConfig::default();
    let small: Vec<u64> = sherlock_fleet::generate_fleet(&cfg, 8, 0xf1ee7)
        .iter()
        .map(|a| a.seed)
        .collect();
    let large: Vec<u64> = sherlock_fleet::generate_fleet(&cfg, 16, 0xf1ee7)
        .iter()
        .map(|a| a.seed)
        .collect();
    assert_eq!(small[..], large[..8]);
}
