//! Integration tests of the fleet generator and its scoring harness.

use std::collections::BTreeSet;

use sherlock_apps::Verdict;
use sherlock_core::Role;
use sherlock_fleet::{
    generate, generate_fleet, materialize, plan, score_app, AppPlan, GeneratedApp, GrammarConfig,
    Idiom, IdiomInstance,
};
use sherlock_sim::SimConfig;
use sherlock_trace::OpRef;

/// An app holding exactly one instance of `idiom`.
fn single(idiom: Idiom, seed: u64) -> GeneratedApp {
    materialize(&AppPlan {
        seed,
        instances: vec![IdiomInstance {
            idiom,
            index: 0,
            workers: 2,
            iters: 2,
        }],
    })
}

#[test]
fn plans_are_pure_in_config_and_seed() {
    let cfg = GrammarConfig::default();
    assert_eq!(plan(&cfg, 42), plan(&cfg, 42));
    // Shapes are within the configured bounds.
    let p = plan(&cfg, 42);
    assert!(p.instances.len() >= cfg.min_idioms && p.instances.len() <= cfg.max_idioms);
    for inst in &p.instances {
        assert!((2..=cfg.max_workers).contains(&inst.workers));
        assert!((2..=cfg.max_iters).contains(&inst.iters));
    }
    // Different seeds draw different shapes somewhere in a small sample.
    assert!((0..16u64).any(|s| plan(&cfg, s) != p));
}

#[test]
fn source_listing_names_every_instance_and_group() {
    let app = generate(&GrammarConfig::default(), 0xabcd);
    assert!(app.source.starts_with("app fleet-000000000000abcd"));
    for inst in &app.instances {
        assert!(
            app.source
                .contains(&format!("[{}] {}", inst.index, inst.idiom)),
            "instance {inst:?} missing from:\n{}",
            app.source
        );
    }
    assert_eq!(
        app.source.matches("group [").count(),
        app.truth.sync_groups.len()
    );
    assert_eq!(app.group_idioms.len(), app.truth.sync_groups.len());
}

#[test]
fn fleet_covers_every_idiom_class() {
    let cfg = GrammarConfig::default();
    let apps = generate_fleet(&cfg, 200, 0xf1ee7);
    assert_eq!(apps.len(), 200);
    let seen: BTreeSet<Idiom> = apps
        .iter()
        .flat_map(|a| a.instances.iter().map(|i| i.idiom))
        .collect();
    for idiom in Idiom::ALL {
        assert!(seen.contains(&idiom), "fleet never draws {idiom}");
    }
    // Seeds never repeat within a fleet (ids are unique).
    let ids: BTreeSet<&str> = apps.iter().map(|a| a.id.as_str()).collect();
    assert_eq!(ids.len(), apps.len());
}

#[test]
fn every_idiom_materializes_runnable_tests() {
    sherlock_sim::install_sim_panic_hook();
    for idiom in Idiom::ALL {
        let app = single(idiom, 0x1dea);
        assert!(!app.tests.is_empty(), "{idiom} produced no tests");
        for t in &app.tests {
            let run = t.run(SimConfig::with_seed(11));
            // Synchronized idioms assert their invariants in-test; only the
            // seeded race is allowed to misbehave (it deliberately never
            // asserts, so it runs clean too).
            assert!(
                run.panics.is_empty(),
                "{idiom} test {} panicked: {:?}",
                t.name(),
                run.panics
            );
            assert!(!run.trace.events().is_empty());
        }
    }
}

#[test]
fn shared_library_groups_deduplicate_across_instances() {
    let app = materialize(&AppPlan {
        seed: 5,
        instances: vec![
            IdiomInstance {
                idiom: Idiom::MonitorLock,
                index: 0,
                workers: 2,
                iters: 2,
            },
            IdiomInstance {
                idiom: Idiom::MonitorLock,
                index: 1,
                workers: 3,
                iters: 2,
            },
        ],
    });
    // Both instances synchronize through the same static Monitor.Enter/Exit
    // sites, so the app plants exactly one release and one acquire group.
    assert_eq!(app.truth.sync_groups.len(), 2);
    assert_eq!(app.tests.len(), 2);
}

#[test]
fn seeded_race_ops_score_data_racy_never_not_sync() {
    sherlock_sim::install_sim_panic_hook();
    let app = single(Idiom::SeededRace, 7);
    assert_eq!(app.truth.sync_groups.len(), 0);
    assert!(!app.truth.racy_ops.is_empty());
    assert!(!app.truth.race_locations.is_empty());
    let score = score_app(&app, 2).expect("seeded-race app solves");
    // Whatever the solver reads into the racy accesses lands in the paper's
    // "Data Racy" column, not in the precision denominator.
    assert!(score.counts.data_racy >= 1, "race pair never inferred");
    assert_eq!(score.counts.not_sync, 0);
    assert_eq!(score.groups_total, 0);
    assert!((score.counts.precision() - 1.0).abs() < f64::EPSILON);
}

#[test]
fn flag_spin_payload_classifies_instr_error() {
    let app = single(Idiom::FlagSpin, 3);
    let class = "Fleet0000000000000003.Flag0";
    let ready_w = OpRef::field_write(class, "ready").intern();
    let ready_r = OpRef::field_read(class, "ready").intern();
    let payload_w = OpRef::field_write(class, "payload").intern();
    let payload_r = OpRef::field_read(class, "payload").intern();
    // The ready pair is the planted synchronization…
    assert_eq!(
        app.truth.classify(ready_w, Role::Release),
        Verdict::TrueSync
    );
    assert_eq!(
        app.truth.classify(ready_r, Role::Acquire),
        Verdict::TrueSync
    );
    // …while payload ops — forced into the solution when tracing hides the
    // flag ordering — are instrumentation errors, not plain false positives.
    assert_eq!(
        app.truth.classify(payload_w, Role::Release),
        Verdict::InstrError
    );
    assert_eq!(
        app.truth.classify(payload_r, Role::Acquire),
        Verdict::InstrError
    );
}

#[test]
fn ops_attribute_to_their_planting_idiom() {
    let app = single(Idiom::PhaserPingPong, 9);
    let arrive = OpRef::lib_begin("System.Threading.Phaser", "Arrive").intern();
    assert_eq!(app.idiom_of(arrive), Some(Idiom::PhaserPingPong));
    let stranger = OpRef::lib_begin("Some.Other.Class", "M").intern();
    assert_eq!(app.idiom_of(stranger), None);
}
