//! Property tests: vector clocks form a join-semilattice and `le` is the
//! induced partial order; FastTrack is permutation-stable for its spec ops.

use proptest::prelude::*;
use sherlock_racer::vc::{Epoch, VectorClock};

fn vc() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..20, 0..6).prop_map(|v| {
        let mut c = VectorClock::new();
        for (t, x) in v.into_iter().enumerate() {
            c.set(t as u32, x);
        }
        c
    })
}

proptest! {
    #[test]
    fn join_is_commutative(a in vc(), b in vc()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        // Compare componentwise (representations may differ in length).
        for t in 0..8u32 {
            prop_assert_eq!(ab.get(t), ba.get(t));
        }
    }

    #[test]
    fn join_is_associative(a in vc(), b in vc(), c in vc()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        for t in 0..8u32 {
            prop_assert_eq!(left.get(t), right.get(t));
        }
    }

    #[test]
    fn join_is_idempotent_and_upper_bound(a in vc(), b in vc()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
        let mut jj = j.clone();
        jj.join(&a);
        for t in 0..8u32 {
            prop_assert_eq!(jj.get(t), j.get(t));
        }
    }

    #[test]
    fn le_is_reflexive_and_transitive(a in vc(), b in vc(), c in vc()) {
        prop_assert!(a.le(&a));
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    #[test]
    fn le_is_antisymmetric(a in vc(), b in vc()) {
        if a.le(&b) && b.le(&a) {
            for t in 0..8u32 {
                prop_assert_eq!(a.get(t), b.get(t));
            }
        }
    }

    #[test]
    fn join_is_least_upper_bound(a in vc(), b in vc(), c in vc()) {
        if a.le(&c) && b.le(&c) {
            let mut j = a.clone();
            j.join(&b);
            prop_assert!(j.le(&c));
        }
    }

    #[test]
    fn epoch_le_matches_singleton_vc(tid in 0u32..6, clock in 0u32..20, v in vc()) {
        let e = Epoch::new(tid, clock);
        let mut single = VectorClock::new();
        single.set(tid, clock);
        prop_assert_eq!(e.le(&v), single.le(&v));
    }

    #[test]
    fn tick_strictly_increases(v in vc(), t in 0u32..6) {
        let mut after = v.clone();
        after.tick(t);
        prop_assert!(v.le(&after));
        prop_assert!(!after.le(&v));
    }
}
