//! FastTrack behaviour on simulated workloads under various sync specs.

use sherlock_racer::{detect, first_race, RaceKind, SyncSpec};
use sherlock_sim::prims::{EventWaitHandle, Monitor, SimThread, Task, TracedVar};
use sherlock_sim::{api, Sim, SimConfig};
use sherlock_trace::{OpRef, Time, Trace};

fn run(seed: u64, f: impl FnOnce() + Send + 'static) -> Trace {
    let r = Sim::new(SimConfig::with_seed(seed)).run(f);
    r.trace
}

#[test]
fn unsynchronized_writes_race() {
    let trace = run(1, || {
        let v = TracedVar::new("FT", "ww", 0u32);
        let v2 = v.clone();
        let h = api::spawn("w", move || v2.set(1));
        v.set(2);
        h.join();
    });
    let races = detect(&trace, &SyncSpec::empty());
    assert!(!races.is_empty());
    assert!(races.iter().any(|r| r.kind == RaceKind::WriteWrite));
    assert!(races[0].location.starts_with("FT::ww@"));
}

#[test]
fn monitor_protection_removes_races_under_manual_spec() {
    let body = || {
        let m = Monitor::new();
        let v = TracedVar::new("FT2", "x", 0u32);
        let (m2, v2) = (m.clone(), v.clone());
        let t = SimThread::start("FT2", "Worker", move || {
            m2.with_lock(|| {
                v2.update(|x| x + 1);
            });
        });
        m.with_lock(|| {
            v.update(|x| x + 1);
        });
        t.join();
    };
    let trace = run(2, body);
    assert!(detect(&trace, &SyncSpec::manual()).is_empty());
    // With no spec at all, the same trace races.
    assert!(!detect(&trace, &SyncSpec::empty()).is_empty());
}

#[test]
fn fork_edge_orders_parent_writes_before_child() {
    let trace = run(3, || {
        let v = TracedVar::new("FT3", "init", 0u32);
        v.set(42);
        let v2 = v.clone();
        let t = SimThread::start("FT3", "Child", move || {
            assert_eq!(v2.get(), 42);
        });
        t.join();
    });
    // Manual spec knows Thread::Start releases but needs the delegate
    // acquire to complete the edge.
    let with_delegate = SyncSpec::manual().with_delegate("FT3", "Child");
    assert!(detect(&trace, &with_delegate).is_empty());
    let without = SyncSpec::manual();
    assert!(!detect(&trace, &without).is_empty());
}

#[test]
fn join_edge_orders_child_writes_before_parent_read() {
    let trace = run(4, || {
        let v = TracedVar::new("FT4", "result", 0u32);
        let v2 = v.clone();
        let t = SimThread::start("FT4", "Producer", move || v2.set(7));
        t.join();
        assert_eq!(v.get(), 7);
    });
    let spec = SyncSpec::manual().with_delegate("FT4", "Producer");
    assert!(detect(&trace, &spec).is_empty());
    // Without the delegate-exit release there is no join edge.
    assert!(!detect(&trace, &SyncSpec::manual()).is_empty());
}

#[test]
fn volatile_annotation_suppresses_flag_races_and_orders_payload() {
    let body = || {
        let flag = TracedVar::new("FT5", "ready", false);
        let data = TracedVar::new("FT5", "payload", 0u32);
        let (f2, d2) = (flag.clone(), data.clone());
        let h = api::spawn("consumer", move || {
            f2.spin_until(Time::from_micros(100), |v| v);
            assert_eq!(d2.get(), 9);
        });
        data.set(9);
        flag.set(true);
        h.join();
    };
    let trace = run(5, body);
    let annotated = SyncSpec::manual().with_volatile("FT5", "ready");
    assert!(detect(&trace, &annotated).is_empty());
    // Without the volatile annotation both the flag and the payload race.
    let races = detect(&trace, &SyncSpec::manual());
    assert!(races.iter().any(|r| r.location.starts_with("FT5::ready")));
    assert!(races.iter().any(|r| r.location.starts_with("FT5::payload")));
}

#[test]
fn manual_spec_misses_task_ordering() {
    // Manual_dr's signature failure (paper §5.4): tasks synchronize via the
    // TPL, which the manual list does not cover, producing a false race.
    let body = || {
        let v = TracedVar::new("FT6", "taskdata", 0u32);
        let v2 = v.clone();
        let t = Task::run("FT6", "Produce", move || v2.set(3));
        t.wait();
        assert_eq!(v.get(), 3);
    };
    let trace = run(6, body);
    assert!(!detect(&trace, &SyncSpec::manual()).is_empty());
    // A spec that knows Task::Run releases and Task::Wait's return acquires
    // (what SherLock infers) eliminates the false race.
    let informed = SyncSpec::manual()
        .with_release(OpRef::lib_begin("System.Threading.Tasks.Task", "Run").intern())
        .with_delegate("FT6", "Produce")
        .with_release(OpRef::app_end("FT6", "Produce").intern())
        .with_acquire(OpRef::lib_end("System.Threading.Tasks.Task", "Wait").intern());
    assert!(detect(&trace, &informed).is_empty());
}

#[test]
fn event_wait_handle_edges_under_manual_spec() {
    let trace = run(7, || {
        let ev = EventWaitHandle::new(false);
        let v = TracedVar::new("FT7", "guarded", 0u32);
        let (e2, v2) = (ev.clone(), v.clone());
        let h = api::spawn("waiter", move || {
            e2.wait_one();
            assert_eq!(v2.get(), 1);
        });
        v.set(1);
        ev.set();
        h.join();
    });
    assert!(detect(&trace, &SyncSpec::manual()).is_empty());
}

#[test]
fn first_race_returns_earliest() {
    let trace = run(8, || {
        let a = TracedVar::new("FT8", "a", 0u32);
        let b = TracedVar::new("FT8", "b", 0u32);
        let (a2, b2) = (a.clone(), b.clone());
        let h = api::spawn("w", move || {
            a2.set(1);
            b2.set(1);
        });
        a.set(2);
        b.set(2);
        h.join();
    });
    let all = detect(&trace, &SyncSpec::empty());
    let first = first_race(&trace, &SyncSpec::empty()).unwrap();
    assert!(all.len() >= 2);
    assert_eq!(first.time, all[0].time);
    assert!(all.windows(2).all(|w| w[0].time <= w[1].time));
}

#[test]
fn read_write_race_kind_detected() {
    let trace = run(9, || {
        let v = TracedVar::new("FT9", "rw", 0u32);
        let v2 = v.clone();
        let h = api::spawn("reader", move || {
            v2.get();
        });
        api::sleep(Time::from_millis(1));
        v.set(1);
        h.join();
    });
    let races = detect(&trace, &SyncSpec::empty());
    assert!(races
        .iter()
        .any(|r| r.kind == RaceKind::ReadWrite || r.kind == RaceKind::WriteRead));
}

#[test]
fn shared_read_state_catches_later_write() {
    let trace = run(10, || {
        let v = TracedVar::new("FT10", "shared", 0u32);
        let mut hs = Vec::new();
        for i in 0..3 {
            let v2 = v.clone();
            hs.push(api::spawn(&format!("r{i}"), move || {
                v2.get();
            }));
        }
        for h in &hs {
            h.join();
        }
        // Writer unordered with the readers (join is untraced => no HB under
        // the empty spec).
        v.set(1);
    });
    let races = detect(&trace, &SyncSpec::empty());
    assert!(races.iter().any(|r| r.kind == RaceKind::ReadWrite));
}

#[test]
fn static_key_ignores_object_identity() {
    let trace = run(11, || {
        let v = TracedVar::new("FT11", "k", 0u32);
        let v2 = v.clone();
        let h = api::spawn("w", move || v2.set(1));
        v.set(2);
        h.join();
    });
    let races = detect(&trace, &SyncSpec::empty());
    let (loc, _, _) = races[0].static_key();
    assert_eq!(loc, "FT11::k");
}

#[test]
fn sync_spec_accesses_are_exempt_from_checking() {
    // The flag itself is racy, but once annotated volatile it is
    // synchronization, not data.
    let trace = run(12, || {
        let flag = TracedVar::new("FT12", "flag", false);
        let f2 = flag.clone();
        let h = api::spawn("w", move || f2.set(true));
        flag.get();
        h.join();
    });
    let spec = SyncSpec::empty().with_volatile("FT12", "flag");
    assert!(detect(&trace, &spec).is_empty());
}
