//! A FastTrack-style dynamic data-race detector over SherLock-rs traces.
//!
//! The paper evaluates inferred synchronizations by plugging them into a
//! reimplementation of FastTrack (§5.4), comparing `Manual_dr` (a manually
//! annotated synchronization list) against `SherLock_dr` (SherLock's inferred
//! list). This crate provides that detector:
//!
//! * [`vc`] — vector clocks and epochs;
//! * [`SyncSpec`] — which operations induce happens-before edges, with the
//!   [`SyncSpec::manual`] baseline and [`SyncSpec::from_report`] for
//!   inference output;
//! * [`detect`]/[`first_race`] — the detector itself;
//! * [`differential`] — the detector under a ground-truth spec *and* an
//!   inferred spec on the same traces, with seeded-race disagreement
//!   reported as a first-class result (the schedule-exploration oracle).
//!
//! # Example
//!
//! ```
//! use sherlock_racer::{detect, SyncSpec};
//! use sherlock_sim::prims::TracedVar;
//! use sherlock_sim::{Sim, SimConfig};
//!
//! let report = Sim::new(SimConfig::with_seed(1)).run(|| {
//!     let v = TracedVar::new("Racy", "counter", 0u32);
//!     let v2 = v.clone();
//!     let h = sherlock_sim::api::spawn("w", move || { v2.set(1); });
//!     v.set(2);
//!     h.join();
//! });
//! let races = detect(&report.trace, &SyncSpec::empty());
//! assert!(!races.is_empty());
//! ```

mod differential;
mod fasttrack;
mod spec;
pub mod vc;

pub use differential::{differential, DifferentialReport, Disagreement};
pub use fasttrack::{detect, first_race, Race, RaceKind};
pub use spec::SyncSpec;
