//! Vector clocks and epochs, after FastTrack (Flanagan & Freund, PLDI 2009).

use std::fmt;

/// A vector clock: one logical clock per thread, missing entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u32>,
}

impl VectorClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The clock of thread `t`.
    pub fn get(&self, t: u32) -> u32 {
        self.clocks.get(t as usize).copied().unwrap_or(0)
    }

    /// Sets thread `t`'s component.
    pub fn set(&mut self, t: u32, v: u32) {
        let idx = t as usize;
        if idx >= self.clocks.len() {
            self.clocks.resize(idx + 1, 0);
        }
        self.clocks[idx] = v;
    }

    /// Increments thread `t`'s component, returning the new value.
    pub fn tick(&mut self, t: u32) -> u32 {
        let v = self.get(t) + 1;
        self.set(t, v);
        v
    }

    /// Pointwise maximum (lattice join) with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if other.clocks.len() > self.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (a, &b) in self.clocks.iter_mut().zip(&other.clocks) {
            *a = (*a).max(b);
        }
    }

    /// Whether `self ⪯ other` pointwise (happens-before or equal).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.clocks
            .iter()
            .enumerate()
            .all(|(t, &v)| v <= other.get(t as u32))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.clocks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

/// A FastTrack epoch `c@t`: one thread's clock value, the compact
/// representation for non-shared accesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Epoch {
    /// Owning thread.
    pub tid: u32,
    /// That thread's clock at the access.
    pub clock: u32,
}

impl Epoch {
    /// The `0@0` bottom epoch (no prior access).
    pub const NONE: Epoch = Epoch { tid: 0, clock: 0 };

    /// Builds `c@t`.
    pub fn new(tid: u32, clock: u32) -> Self {
        Epoch { tid, clock }
    }

    /// Whether this epoch happens-before-or-equals the clock `vc`
    /// (`c ≤ vc[t]`).
    pub fn le(&self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }

    /// Whether this is the bottom epoch.
    pub fn is_none(&self) -> bool {
        self.clock == 0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn le_is_pointwise() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = VectorClock::new();
        b.set(0, 2);
        b.set(1, 1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.le(&a));
    }

    #[test]
    fn le_handles_missing_entries() {
        let mut a = VectorClock::new();
        a.set(5, 1);
        let b = VectorClock::new();
        assert!(b.le(&a));
        assert!(!a.le(&b));
    }

    #[test]
    fn tick_increments() {
        let mut a = VectorClock::new();
        assert_eq!(a.tick(3), 1);
        assert_eq!(a.tick(3), 2);
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(0), 0);
    }

    #[test]
    fn epoch_le_checks_owner_component() {
        let e = Epoch::new(1, 4);
        let mut vc = VectorClock::new();
        vc.set(1, 4);
        assert!(e.le(&vc));
        vc.set(1, 3);
        assert!(!e.le(&vc));
    }

    #[test]
    fn bottom_epoch_precedes_everything() {
        assert!(Epoch::NONE.le(&VectorClock::new()));
        assert!(Epoch::NONE.is_none());
        assert!(!Epoch::new(0, 1).is_none());
    }

    // Lattice laws exercised by proptest in tests/proptest_vc.rs.
}
