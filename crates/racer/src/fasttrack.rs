//! The FastTrack race-detection algorithm (Flanagan & Freund, PLDI 2009)
//! over SherLock-rs traces.
//!
//! The detector is parameterised by a [`SyncSpec`]: every instance of a
//! release op publishes the thread's clock into the *channel* of the object
//! it acts on, and every instance of an acquire op joins that channel — the
//! same treatment a lock object receives in classic FastTrack, generalized to
//! arbitrary inferred synchronizations. Accesses named by the spec are
//! treated as synchronization (volatile semantics) and are exempt from race
//! checking.

use std::collections::HashMap;

use sherlock_trace::{AccessClass, OpId, OpRef, ThreadId, Time, Trace};

use crate::spec::SyncSpec;
use crate::vc::{Epoch, VectorClock};

/// The flavour of a detected race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered writes.
    WriteWrite,
    /// A write unordered with a later read.
    WriteRead,
    /// A read unordered with a later write.
    ReadWrite,
}

/// One race report.
#[derive(Clone, Debug)]
pub struct Race {
    /// Human-readable location (`Class::field@object` or `Class@object`).
    pub location: String,
    /// Static op of the earlier access (`None` when the prior access
    /// predates tracking, which cannot happen for reported races).
    pub prior_op: Option<OpId>,
    /// Thread of the earlier access.
    pub prior_thread: ThreadId,
    /// Static op of the later access.
    pub current_op: OpId,
    /// Thread of the later access.
    pub current_thread: ThreadId,
    /// Virtual time of the later access.
    pub time: Time,
    /// Race flavour.
    pub kind: RaceKind,
}

impl Race {
    /// Identity used to deduplicate reports across runs: the static location
    /// name (without the object id) plus the static op pair.
    pub fn static_key(&self) -> (String, Option<OpId>, OpId) {
        let loc = self
            .location
            .split('@')
            .next()
            .unwrap_or(&self.location)
            .to_string();
        (loc, self.prior_op, self.current_op)
    }
}

#[derive(Clone, Debug)]
enum ReadState {
    Epoch(Epoch, Option<OpId>),
    Shared(VectorClock, Option<OpId>),
}

#[derive(Clone, Debug)]
struct VarState {
    write: Epoch,
    write_op: Option<OpId>,
    read: ReadState,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            write: Epoch::NONE,
            write_op: None,
            read: ReadState::Epoch(Epoch::NONE, None),
        }
    }
}

/// Runs FastTrack over a trace under the given synchronization spec,
/// returning every race report in trace order. The detector continues past
/// the first report best-effort, like the original; the paper's evaluation
/// counts only the first report per run ([`first_race`]).
pub fn detect(trace: &Trace, spec: &SyncSpec) -> Vec<Race> {
    let _s = sherlock_obs::span("racer.detect");
    sherlock_obs::counter!("racer.events_checked").add(trace.len() as u64);
    let mut threads: HashMap<u32, VectorClock> = HashMap::new();
    let mut channels: HashMap<u64, VectorClock> = HashMap::new();
    let mut vars: HashMap<(u64, String), VarState> = HashMap::new();
    let mut loc_cache: HashMap<OpId, Option<String>> = HashMap::new();
    let mut races: Vec<Race> = Vec::new();

    fn thread_vc(threads: &mut HashMap<u32, VectorClock>, t: u32) -> &mut VectorClock {
        threads.entry(t).or_insert_with(|| {
            let mut vc = VectorClock::new();
            vc.set(t, 1);
            vc
        })
    }

    for ev in trace.events() {
        let t = ev.thread.0;
        let is_acquire = spec.is_acquire(ev.op);
        let is_release = spec.is_release(ev.op);

        if is_acquire {
            if let Some(ch) = channels.get(&ev.object.0).cloned() {
                thread_vc(&mut threads, t).join(&ch);
            }
        }
        if is_release {
            let vc = thread_vc(&mut threads, t).clone();
            channels.entry(ev.object.0).or_default().join(&vc);
            thread_vc(&mut threads, t).tick(t);
        }

        if is_acquire || is_release || ev.access == AccessClass::None {
            continue;
        }

        let loc = loc_cache
            .entry(ev.op)
            .or_insert_with(|| match ev.op.resolve() {
                OpRef::FieldRead { class, field } | OpRef::FieldWrite { class, field } => {
                    Some(format!("{class}::{field}"))
                }
                // Interlocked operations are hardware-atomic: by the C#
                // memory model they cannot data-race, although they induce
                // no happens-before for surrounding accesses.
                OpRef::MethodBegin { class, .. } if class == "System.Threading.Interlocked" => None,
                OpRef::MethodBegin { class, .. } => Some(class),
                OpRef::MethodEnd { .. } => None,
            })
            .clone();
        let Some(loc) = loc else { continue };

        let vc = thread_vc(&mut threads, t).clone();
        let epoch = Epoch::new(t, vc.get(t));
        let state = vars.entry((ev.object.0, loc.clone())).or_default();
        let location = format!("{}@{}", loc, ev.object.0);

        match ev.access {
            AccessClass::Read => {
                if !state.write.le(&vc) {
                    races.push(Race {
                        location: location.clone(),
                        prior_op: state.write_op,
                        prior_thread: ThreadId(state.write.tid),
                        current_op: ev.op,
                        current_thread: ev.thread,
                        time: ev.time,
                        kind: RaceKind::WriteRead,
                    });
                }
                match &mut state.read {
                    ReadState::Epoch(e, op) => {
                        if e.tid == t || e.le(&vc) {
                            *e = epoch;
                            *op = Some(ev.op);
                        } else {
                            let mut shared = VectorClock::new();
                            shared.set(e.tid, e.clock);
                            shared.set(t, epoch.clock);
                            state.read = ReadState::Shared(shared, Some(ev.op));
                        }
                    }
                    ReadState::Shared(svc, op) => {
                        svc.set(t, epoch.clock);
                        *op = Some(ev.op);
                    }
                }
            }
            AccessClass::Write => {
                if !state.write.le(&vc) {
                    races.push(Race {
                        location: location.clone(),
                        prior_op: state.write_op,
                        prior_thread: ThreadId(state.write.tid),
                        current_op: ev.op,
                        current_thread: ev.thread,
                        time: ev.time,
                        kind: RaceKind::WriteWrite,
                    });
                }
                let read_race = match &state.read {
                    ReadState::Epoch(e, op) => (!e.le(&vc)).then_some((*op, e.tid)),
                    ReadState::Shared(svc, op) => (!svc.le(&vc)).then_some((*op, t)),
                };
                if let Some((op, tid)) = read_race {
                    races.push(Race {
                        location,
                        prior_op: op,
                        prior_thread: ThreadId(tid),
                        current_op: ev.op,
                        current_thread: ev.thread,
                        time: ev.time,
                        kind: RaceKind::ReadWrite,
                    });
                }
                state.write = epoch;
                state.write_op = Some(ev.op);
                state.read = ReadState::Epoch(Epoch::NONE, None);
            }
            AccessClass::None => unreachable!("filtered above"),
        }
    }
    sherlock_obs::counter!("racer.races_reported").add(races.len() as u64);
    races
}

/// The first race of a run, if any (the paper's §5.4 counting rule:
/// FastTrack's guarantees "only hold till the first data race report").
pub fn first_race(trace: &Trace, spec: &SyncSpec) -> Option<Race> {
    detect(trace, spec).into_iter().next()
}
