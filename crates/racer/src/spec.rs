//! Synchronization specifications: which trace operations induce
//! happens-before edges.

use std::collections::BTreeSet;

use sherlock_core::{InferenceReport, Role};
use sherlock_trace::{OpId, OpRef};

/// The set of operations a race detector treats as synchronizations.
///
/// The paper compares two FastTrack variants (§5.4): `Manual_dr`, "equipped
/// with a list of manually identified synchronizations", and `SherLock_dr`,
/// which "only uses the synchronizations inferred by SherLock".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncSpec {
    /// Operations whose instances acquire (join the channel clock of the
    /// object they act on).
    pub acquires: BTreeSet<OpId>,
    /// Operations whose instances release (publish into the channel clock).
    pub releases: BTreeSet<OpId>,
}

impl SyncSpec {
    /// An empty specification (every conflicting pair races).
    pub fn empty() -> Self {
        SyncSpec::default()
    }

    /// The baseline manual annotation set, mirroring the paper's `Manual_dr`:
    /// the classic threading APIs a careful annotator transcribing FastTrack's
    /// Java list would cover — locks, fork/join, wait-notify (events,
    /// semaphores), and reader-writer locks. It deliberately does **not**
    /// know about tasks, thread pools, continuations, dataflow blocks,
    /// `GetOrAdd` delegates, finalizers, static-constructor semantics, or
    /// test-framework ordering — "the numerous ways of creating and
    /// executing tasks in C#" behind most of Manual_dr's false positives.
    pub fn manual() -> Self {
        let mut s = SyncSpec::default();
        let monitor = "System.Threading.Monitor";
        s.acq_lib_end(monitor, "Enter");
        s.rel_lib_begin(monitor, "Exit");
        let thread = "System.Threading.Thread";
        s.rel_lib_begin(thread, "Start");
        s.acq_lib_end(thread, "Join");
        let ewh = "System.Threading.EventWaitHandle";
        s.rel_lib_begin(ewh, "Set");
        let wh = "System.Threading.WaitHandle";
        s.acq_lib_end(wh, "WaitOne");
        s.acq_lib_end(wh, "WaitAll");
        let sem = "System.Threading.Semaphore";
        s.rel_lib_begin(sem, "Release");
        s.acq_lib_end(sem, "WaitOne");
        let rw = "System.Threading.ReaderWriterLock";
        s.acq_lib_end(rw, "AcquireReaderLock");
        s.acq_lib_end(rw, "AcquireWriterLock");
        s.rel_lib_begin(rw, "ReleaseReaderLock");
        s.rel_lib_begin(rw, "ReleaseWriterLock");
        s.rel_lib_begin(rw, "DowngradeFromWriterLock");
        s.acq_lib_end(rw, "UpgradeToWriterLock");
        s
    }

    /// Builds the spec from SherLock's inference (`SherLock_dr`).
    pub fn from_report(report: &InferenceReport) -> Self {
        let mut s = SyncSpec::default();
        for i in &report.inferred {
            match i.role {
                Role::Acquire => {
                    s.acquires.insert(i.op);
                }
                Role::Release => {
                    s.releases.insert(i.op);
                }
            }
        }
        s
    }

    /// Annotates a field as volatile: its writes release and its reads
    /// acquire (the paper's Manual_dr "supported volatile variables").
    pub fn with_volatile(mut self, class: &str, field: &str) -> Self {
        self.releases
            .insert(OpRef::field_write(class, field).intern());
        self.acquires
            .insert(OpRef::field_read(class, field).intern());
        self
    }

    /// Annotates a thread delegate (visible to an annotator at the
    /// `new Thread(...)` site): its entry acquires the fork edge from
    /// `Thread.Start` and its exit releases the join edge consumed by
    /// `Thread.Join`.
    pub fn with_delegate(mut self, class: &str, method: &str) -> Self {
        self.acquires
            .insert(OpRef::app_begin(class, method).intern());
        self.releases.insert(OpRef::app_end(class, method).intern());
        self
    }

    /// Adds an arbitrary acquire op.
    pub fn with_acquire(mut self, op: OpId) -> Self {
        self.acquires.insert(op);
        self
    }

    /// Adds an arbitrary release op.
    pub fn with_release(mut self, op: OpId) -> Self {
        self.releases.insert(op);
        self
    }

    /// Whether `op` acquires under this spec.
    pub fn is_acquire(&self, op: OpId) -> bool {
        self.acquires.contains(&op)
    }

    /// Whether `op` releases under this spec.
    pub fn is_release(&self, op: OpId) -> bool {
        self.releases.contains(&op)
    }

    /// Total annotated operations.
    pub fn len(&self) -> usize {
        self.acquires.len() + self.releases.len()
    }

    /// Whether the spec is empty.
    pub fn is_empty(&self) -> bool {
        self.acquires.is_empty() && self.releases.is_empty()
    }

    fn acq_lib_end(&mut self, class: &str, method: &str) {
        self.acquires.insert(OpRef::lib_end(class, method).intern());
    }

    fn rel_lib_begin(&mut self, class: &str, method: &str) {
        self.releases
            .insert(OpRef::lib_begin(class, method).intern());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_core::InferredOp;

    #[test]
    fn manual_covers_classic_apis_only() {
        let m = SyncSpec::manual();
        assert!(m.is_acquire(OpRef::lib_end("System.Threading.Monitor", "Enter").intern()));
        assert!(m.is_release(OpRef::lib_begin("System.Threading.Monitor", "Exit").intern()));
        assert!(m.is_release(OpRef::lib_begin("System.Threading.Thread", "Start").intern()));
        // The task-parallel library is exactly what Manual_dr misses.
        assert!(!m.is_release(OpRef::lib_begin("System.Threading.Tasks.Task", "Run").intern()));
        assert!(!m.is_release(
            OpRef::lib_begin("System.Threading.ThreadPool", "QueueUserWorkItem").intern()
        ));
    }

    #[test]
    fn volatile_and_delegate_annotations() {
        let s = SyncSpec::manual()
            .with_volatile("Buffer", "endOfFile")
            .with_delegate("Worker", "Run");
        assert!(s.is_release(OpRef::field_write("Buffer", "endOfFile").intern()));
        assert!(s.is_acquire(OpRef::field_read("Buffer", "endOfFile").intern()));
        assert!(s.is_acquire(OpRef::app_begin("Worker", "Run").intern()));
    }

    #[test]
    fn from_report_maps_roles() {
        let acq = OpRef::app_begin("R", "m").intern();
        let rel = OpRef::app_end("R", "m").intern();
        let report = InferenceReport {
            inferred: vec![
                InferredOp {
                    op: acq,
                    role: Role::Acquire,
                    probability: 1.0,
                },
                InferredOp {
                    op: rel,
                    role: Role::Release,
                    probability: 1.0,
                },
            ],
            ..Default::default()
        };
        let s = SyncSpec::from_report(&report);
        assert!(s.is_acquire(acq));
        assert!(s.is_release(rel));
        assert!(!s.is_acquire(rel));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(SyncSpec::empty().is_empty());
    }
}
