//! Differential race detection: FastTrack under two specs, disagreement as a
//! first-class result.
//!
//! SherLock's promise is that its *inferred* synchronization spec is good
//! enough to drive a race detector (`SherLock_dr`, paper §5.4). The
//! differential oracle tests that promise directly on every explored
//! schedule: run [`detect`](crate::detect) under the ground-truth spec and
//! under the inferred spec, project each report set onto static locations,
//! and compare. On *seeded-race* locations (the caller passes the set — the
//! racer crate has no dependency on the benchmark apps), any asymmetry is a
//! [`Disagreement`]:
//!
//! * ground-truth finds a seeded race the inferred spec masks → the
//!   inference invented a happens-before edge (false synchronization);
//! * the inferred spec reports a seeded race ground truth orders → cannot
//!   happen with a complete ground spec, and flags a broken oracle if it
//!   does.
//!
//! One subtlety keeps the comparison fair: FastTrack exempts every operation
//! a spec *declares* as synchronization from race checking (volatile
//! semantics). When inference misreads a seeded racy access itself as a
//! synchronization op — the paper's Table 2 "Data Racy" column — the
//! detector under the inferred spec never *checks* that location; it has
//! abstained, not concluded the accesses are ordered. Those locations are
//! reported separately as [`DifferentialReport::declared_sync`] rather than
//! as disagreements; a [`Disagreement`] means both detectors checked the
//! location and reached different verdicts.
//!
//! Differences on non-seeded locations are kept as informational noise
//! (`*_only_spurious`): an incomplete inferred spec produces false races
//! exactly like `Manual_dr` does, which is a precision number, not an oracle
//! failure.

use std::collections::BTreeSet;

use sherlock_obs::counter;
use sherlock_trace::{OpRef, Trace};

use crate::fasttrack::detect;
use crate::spec::SyncSpec;

/// One seeded-race location on which the two specs disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement {
    /// Static `Class::field` location of the seeded race.
    pub location: String,
    /// Whether the ground-truth spec detected it (`true` means the inferred
    /// spec *masked* a real race; `false` means the inferred spec reported a
    /// seeded race the complete ground spec proves ordered).
    pub ground_detected: bool,
    /// Index (into the input slice) of the first trace exhibiting the
    /// disagreement.
    pub first_trace: usize,
}

/// Aggregate result of differential detection over a set of traces.
#[derive(Clone, Debug, Default)]
pub struct DifferentialReport {
    /// Traces analyzed.
    pub traces: usize,
    /// Total race reports under the ground-truth spec.
    pub ground_reports: usize,
    /// Total race reports under the inferred spec.
    pub inferred_reports: usize,
    /// Seeded-race locations the ground-truth spec detected on some trace.
    pub ground_true_locations: BTreeSet<String>,
    /// Seeded-race locations the inferred spec detected on some trace.
    pub inferred_true_locations: BTreeSet<String>,
    /// Non-seeded locations only the ground-truth spec reported.
    pub ground_only_spurious: BTreeSet<String>,
    /// Non-seeded locations only the inferred spec reported (false races
    /// from missing inferred synchronizations — the `SherLock_dr` precision
    /// story, not an oracle failure).
    pub inferred_only_spurious: BTreeSet<String>,
    /// Seeded-race locations whose accesses one spec *declares* as
    /// synchronization operations (paper Table 2 "Data Racy"): the detector
    /// abstains there, so the location cannot be differentially compared.
    pub declared_sync: BTreeSet<String>,
    /// The seeded-race locations the two specs disagree on.
    pub disagreements: Vec<Disagreement>,
}

impl DifferentialReport {
    /// Whether the two specs agree on every seeded-race location.
    pub fn agrees(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// Folds another report into this one, as if its traces had been
    /// appended to this report's input slice: counts add, location sets
    /// union, and the absorbed disagreements' witness indices shift past
    /// this report's traces. Lets a fleet of per-app oracle runs aggregate
    /// into one verdict without re-running detection.
    pub fn merge(&mut self, other: DifferentialReport) {
        let offset = self.traces;
        self.traces += other.traces;
        self.ground_reports += other.ground_reports;
        self.inferred_reports += other.inferred_reports;
        self.ground_true_locations
            .extend(other.ground_true_locations);
        self.inferred_true_locations
            .extend(other.inferred_true_locations);
        self.ground_only_spurious.extend(other.ground_only_spurious);
        self.inferred_only_spurious
            .extend(other.inferred_only_spurious);
        self.declared_sync.extend(other.declared_sync);
        self.disagreements
            .extend(other.disagreements.into_iter().map(|mut d| {
                d.first_trace += offset;
                d
            }));
    }

    /// Human-readable summary block for CLI output.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "differential oracle: {} trace(s), {} ground / {} inferred race report(s)",
            self.traces, self.ground_reports, self.inferred_reports
        );
        let _ = writeln!(
            out,
            "  seeded races detected: ground {:?}, inferred {:?}",
            self.ground_true_locations, self.inferred_true_locations
        );
        if !self.ground_only_spurious.is_empty() || !self.inferred_only_spurious.is_empty() {
            let _ = writeln!(
                out,
                "  spurious-only (informational): ground {:?}, inferred {:?}",
                self.ground_only_spurious, self.inferred_only_spurious
            );
        }
        if !self.declared_sync.is_empty() {
            let _ = writeln!(
                out,
                "  declared-sync, not compared (Table 2 \"Data Racy\"): {:?}",
                self.declared_sync
            );
        }
        if self.agrees() {
            let _ = writeln!(out, "  spec disagreements: none");
        } else {
            for d in &self.disagreements {
                let side = if d.ground_detected {
                    "MASKED by inferred spec (false synchronization)"
                } else {
                    "reported only under inferred spec"
                };
                let _ = writeln!(
                    out,
                    "  DISAGREEMENT {} — {} (first trace {})",
                    d.location, side, d.first_trace
                );
            }
        }
        out
    }
}

/// The `Class::field` locations whose accesses a spec declares as
/// synchronization operations — FastTrack abstains from race checking these.
fn spec_field_locations(spec: &SyncSpec) -> BTreeSet<String> {
    spec.acquires
        .iter()
        .chain(spec.releases.iter())
        .filter_map(|op| match op.resolve() {
            OpRef::FieldRead { class, field } | OpRef::FieldWrite { class, field } => {
                Some(format!("{class}::{field}"))
            }
            _ => None,
        })
        .collect()
}

fn static_locations(trace: &Trace, spec: &SyncSpec) -> (usize, BTreeSet<String>) {
    let races = detect(trace, spec);
    let locations = races
        .iter()
        .map(|r| {
            r.location
                .split('@')
                .next()
                .unwrap_or(&r.location)
                .to_string()
        })
        .collect();
    (races.len(), locations)
}

/// Runs FastTrack under `ground` and `inferred` on every trace and reports
/// where the specs disagree about the seeded races in `true_locations`
/// (static `Class::field` names).
pub fn differential(
    traces: &[&Trace],
    ground: &SyncSpec,
    inferred: &SyncSpec,
    true_locations: &BTreeSet<String>,
) -> DifferentialReport {
    let _s = sherlock_obs::span("racer.differential");
    let mut report = DifferentialReport {
        traces: traces.len(),
        ..DifferentialReport::default()
    };
    // Per-location index of the first trace whose *aggregate* sets differ —
    // recorded while streaming so disagreements can name a witness trace.
    let mut first_seen: std::collections::BTreeMap<(String, bool), usize> =
        std::collections::BTreeMap::new();

    for (i, trace) in traces.iter().enumerate() {
        let (gn, glocs) = static_locations(trace, ground);
        let (sn, slocs) = static_locations(trace, inferred);
        report.ground_reports += gn;
        report.inferred_reports += sn;
        for loc in glocs {
            if true_locations.contains(&loc) {
                first_seen.entry((loc.clone(), true)).or_insert(i);
                report.ground_true_locations.insert(loc);
            } else {
                report.ground_only_spurious.insert(loc);
            }
        }
        for loc in slocs {
            if true_locations.contains(&loc) {
                first_seen.entry((loc.clone(), false)).or_insert(i);
                report.inferred_true_locations.insert(loc);
            } else {
                report.inferred_only_spurious.insert(loc);
            }
        }
    }
    // Spurious sets become "only" sets: drop the intersection.
    let both: BTreeSet<String> = report
        .ground_only_spurious
        .intersection(&report.inferred_only_spurious)
        .cloned()
        .collect();
    for loc in &both {
        report.ground_only_spurious.remove(loc);
        report.inferred_only_spurious.remove(loc);
    }

    // Locations either spec declares as sync ops are not comparable: the
    // declaring side's detector abstained rather than proved ordering.
    let abstained: BTreeSet<String> = spec_field_locations(ground)
        .union(&spec_field_locations(inferred))
        .cloned()
        .collect();

    for loc in report
        .ground_true_locations
        .symmetric_difference(&report.inferred_true_locations)
    {
        if abstained.contains(loc) {
            report.declared_sync.insert(loc.clone());
            continue;
        }
        let ground_detected = report.ground_true_locations.contains(loc);
        let first_trace = first_seen
            .get(&(loc.clone(), ground_detected))
            .copied()
            .unwrap_or(0);
        report.disagreements.push(Disagreement {
            location: loc.clone(),
            ground_detected,
            first_trace,
        });
    }
    counter!("differential.traces").add(traces.len() as u64);
    counter!("differential.disagreements").add(report.disagreements.len() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_trace::{OpRef, Time, TraceBuilder};

    /// A two-thread trace: T0 writes `C::x` then performs `rel`; T1 performs
    /// `acq` then reads `C::x`. Ordered iff the spec knows rel/acq.
    fn handoff_trace() -> Trace {
        let w = OpRef::field_write("C", "x").intern();
        let r = OpRef::field_read("C", "x").intern();
        let rel = OpRef::lib_begin("Chan", "Send").intern();
        let acq = OpRef::lib_end("Chan", "Recv").intern();
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_nanos(1), 0, w, 7);
        tb.push(Time::from_nanos(2), 0, rel, 9);
        tb.push(Time::from_nanos(3), 1, acq, 9);
        tb.push(Time::from_nanos(4), 1, r, 7);
        tb.finish()
    }

    fn chan_spec() -> SyncSpec {
        SyncSpec::empty()
            .with_release(OpRef::lib_begin("Chan", "Send").intern())
            .with_acquire(OpRef::lib_end("Chan", "Recv").intern())
    }

    #[test]
    fn agreement_when_specs_match() {
        let t = handoff_trace();
        let truth: BTreeSet<String> = ["C::x".to_string()].into();
        let rep = differential(&[&t], &chan_spec(), &chan_spec(), &truth);
        assert!(rep.agrees());
        assert_eq!(rep.ground_reports, 0);
        assert!(rep.render().contains("spec disagreements: none"));
    }

    #[test]
    fn masked_race_is_a_disagreement() {
        // Ground spec is empty for this synthetic trace's channel (so the
        // seeded race is visible), while the "inferred" spec hallucinated
        // the Chan edge — masking the race.
        let t = handoff_trace();
        let truth: BTreeSet<String> = ["C::x".to_string()].into();
        let rep = differential(&[&t], &SyncSpec::empty(), &chan_spec(), &truth);
        assert!(!rep.agrees());
        assert_eq!(rep.disagreements.len(), 1);
        let d = &rep.disagreements[0];
        assert_eq!(d.location, "C::x");
        assert!(d.ground_detected);
        assert_eq!(d.first_trace, 0);
        assert!(rep.render().contains("MASKED"));
    }

    #[test]
    fn declared_sync_location_abstains_instead_of_disagreeing() {
        // Inference misread the racy field itself as a volatile-style sync
        // pair (Table 2 "Data Racy"): the detector abstains at C::x, so the
        // masked race is recorded as declared-sync, not a disagreement.
        let t = handoff_trace();
        let truth: BTreeSet<String> = ["C::x".to_string()].into();
        let inferred = SyncSpec::empty()
            .with_release(OpRef::field_write("C", "x").intern())
            .with_acquire(OpRef::field_read("C", "x").intern());
        let rep = differential(&[&t], &SyncSpec::empty(), &inferred, &truth);
        assert!(rep.agrees());
        assert_eq!(
            rep.declared_sync,
            ["C::x".to_string()].into_iter().collect::<BTreeSet<_>>()
        );
        assert!(rep.render().contains("Data Racy"));
    }

    #[test]
    fn spurious_races_are_informational_not_disagreements() {
        // Nothing in `true_locations`: the race both specs see is spurious
        // and identical → intersection dropped, no disagreement.
        let t = handoff_trace();
        let rep = differential(
            &[&t],
            &SyncSpec::empty(),
            &SyncSpec::empty(),
            &BTreeSet::new(),
        );
        assert!(rep.agrees());
        assert!(rep.ground_only_spurious.is_empty());
        assert!(rep.inferred_only_spurious.is_empty());
        // One-sided spurious shows up in the inferred-only bucket.
        let rep = differential(&[&t], &chan_spec(), &SyncSpec::empty(), &BTreeSet::new());
        assert!(rep.agrees(), "spurious differences never disagree");
        assert_eq!(
            rep.inferred_only_spurious,
            ["C::x".to_string()].into_iter().collect()
        );
    }

    #[test]
    fn merge_offsets_witness_indices_and_unions_sets() {
        let t = handoff_trace();
        let truth: BTreeSet<String> = ["C::x".to_string()].into();
        // Two independent runs: the first agrees, the second disagrees with
        // its witness at local index 0.
        let mut merged = differential(&[&t, &t], &chan_spec(), &chan_spec(), &truth);
        let failing = differential(&[&t], &SyncSpec::empty(), &chan_spec(), &truth);
        assert!(merged.agrees());
        assert!(!failing.agrees());
        merged.merge(failing);
        assert_eq!(merged.traces, 3);
        assert!(!merged.agrees());
        // Local witness 0 of the absorbed report lands after the two traces
        // already in `merged`.
        assert_eq!(merged.disagreements[0].first_trace, 2);
        assert!(merged.ground_true_locations.contains("C::x"));
        assert_eq!(merged.ground_reports, 1);
    }

    #[test]
    fn aggregates_across_traces() {
        let t = handoff_trace();
        let truth: BTreeSet<String> = ["C::x".to_string()].into();
        let rep = differential(
            &[&t, &t, &t],
            &SyncSpec::empty(),
            &SyncSpec::empty(),
            &truth,
        );
        assert_eq!(rep.traces, 3);
        assert!(rep.agrees());
        assert_eq!(rep.ground_reports, 3);
        assert_eq!(
            rep.ground_true_locations,
            ["C::x".to_string()].into_iter().collect()
        );
    }
}
