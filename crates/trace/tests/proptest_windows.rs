//! Property tests for window extraction: the production implementation must
//! agree with a transparent quadratic reference on random traces.

use proptest::prelude::*;
use sherlock_trace::windows::{extract, WindowConfig};
use sherlock_trace::{OpRef, Time, Trace, TraceBuilder};

#[derive(Debug, Clone)]
struct Ev {
    thread: u32,
    field: usize,
    object: u64,
    write: bool,
    gap_us: u64,
}

fn events() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        (0u32..3, 0usize..3, 1u64..3, any::<bool>(), 0u64..2000).prop_map(
            |(thread, field, object, write, gap_us)| Ev {
                thread,
                field,
                object,
                write,
                gap_us,
            },
        ),
        0..40,
    )
}

fn build(evs: &[Ev]) -> Trace {
    let mut tb = TraceBuilder::new();
    let mut t = 0u64;
    for e in evs {
        t += e.gap_us + 1;
        let op = if e.write {
            OpRef::field_write("PW", format!("f{}", e.field)).intern()
        } else {
            OpRef::field_read("PW", format!("f{}", e.field)).intern()
        };
        tb.push(Time::from_micros(t), e.thread, op, e.object);
    }
    tb.finish()
}

/// Reference implementation: all-pairs scan with the same rules.
fn reference_pairs(trace: &Trace, cfg: &WindowConfig) -> Vec<(usize, usize)> {
    let events = trace.events();
    let mut per_pair = std::collections::HashMap::new();
    let mut out = Vec::new();
    for j in 0..events.len() {
        // Reference scans candidates from nearest to farthest, matching the
        // per-pair cap semantics of the production code.
        for i in (0..j).rev() {
            let (a, b) = (&events[i], &events[j]);
            let same_loc = a.object == b.object
                && a.op.resolve().class() == b.op.resolve().class()
                && a.op.resolve().member() == b.op.resolve().member();
            if !same_loc
                || a.thread == b.thread
                || !a.access.conflicts_with(b.access)
                || b.time - a.time > cfg.near
            {
                continue;
            }
            let count = per_pair.entry((a.op, b.op)).or_insert(0usize);
            if *count >= cfg.cap_per_pair {
                continue;
            }
            *count += 1;
            out.push((i, j));
        }
    }
    out.sort_unstable_by_key(|&(i, j)| (j, i));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same dynamic pair set as the reference implementation.
    #[test]
    fn extraction_matches_reference(evs in events()) {
        let trace = build(&evs);
        let cfg = WindowConfig { near: Time::from_millis(20), cap_per_pair: 4 };
        let production = extract(&trace, &cfg);
        let reference = reference_pairs(&trace, &cfg);
        prop_assert_eq!(production.len(), reference.len());
        for (w, &(i, j)) in production.iter().zip(&reference) {
            prop_assert_eq!(w.a_op, trace.events()[i].op);
            prop_assert_eq!(w.b_op, trace.events()[j].op);
            prop_assert_eq!(w.a_time, trace.events()[i].time);
            prop_assert_eq!(w.b_time, trace.events()[j].time);
        }
    }

    /// Structural invariants of every extracted window.
    #[test]
    fn window_invariants(evs in events()) {
        let trace = build(&evs);
        let cfg = WindowConfig::default();
        for w in extract(&trace, &cfg) {
            // Endpoints ordered, distinct threads, within Near.
            prop_assert!(w.a_time <= w.b_time);
            prop_assert!(w.a_thread != w.b_thread);
            prop_assert!(w.b_time - w.a_time <= cfg.near);
            // Both endpoints appear among their side's candidates.
            prop_assert!(w.release.iter().any(|c| c.op == w.a_op));
            prop_assert!(w.acquire.iter().any(|c| c.op == w.b_op));
            // Candidates deduplicated and sorted with positive counts.
            prop_assert!(w.release.windows(2).all(|p| p[0].op < p[1].op));
            prop_assert!(w.acquire.windows(2).all(|p| p[0].op < p[1].op));
            prop_assert!(w.release.iter().all(|c| c.count > 0));
            // Capability flags agree with candidate op kinds.
            let rel_cap = w.release.iter().any(|c| c.op.resolve().can_release());
            let acq_cap = w.acquire.iter().any(|c| c.op.resolve().can_acquire());
            prop_assert_eq!(w.release_capable, rel_cap);
            prop_assert_eq!(w.acquire_capable, acq_cap);
            prop_assert_eq!(w.is_racy(), !rel_cap || !acq_cap);
        }
    }

    /// The per-pair cap is respected exactly.
    #[test]
    fn cap_respected(evs in events(), cap in 1usize..5) {
        let trace = build(&evs);
        let cfg = WindowConfig { near: Time::from_secs(10), cap_per_pair: cap };
        let mut counts = std::collections::HashMap::new();
        for w in extract(&trace, &cfg) {
            *counts.entry(w.pair()).or_insert(0usize) += 1;
        }
        for (_, c) in counts {
            prop_assert!(c <= cap);
        }
    }
}

#[cfg(feature = "serde")]
mod serde_round_trip {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// JSON round-trips preserve every event and delay (ids re-intern).
        #[test]
        fn trace_json_round_trip(evs in events()) {
            let trace = build(&evs);
            let json = serde_json::to_string(&trace).expect("serialize");
            let back: Trace = serde_json::from_str(&json).expect("deserialize");
            prop_assert_eq!(trace.events(), back.events());
            prop_assert_eq!(trace.delays(), back.delays());
        }
    }
}
