use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, measured in nanoseconds.
///
/// SherLock's thresholds are all time scales: the `Near` window that pairs
/// conflicting accesses (1 s by default) and the Perturber's injected delay
/// (100 ms). The reproduction runs workloads on a virtual-time simulator, so
/// timestamps are deterministic integers rather than wall-clock readings.
///
/// ```
/// use sherlock_trace::Time;
/// let t = Time::from_millis(100);
/// assert_eq!(t + Time::from_millis(900), Time::from_secs(1));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// The zero instant (start of a simulated run).
    pub const ZERO: Time = Time(0);
    /// The maximum representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; returns [`Time::ZERO`] on underflow.
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition; returns [`Time::MAX`] on overflow.
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Time::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Time::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Time::from_nanos(17).as_nanos(), 17);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_millis(250);
        let b = Time::from_millis(750);
        assert_eq!(a + b, Time::from_secs(1));
        assert_eq!(b - a, Time::from_millis(500));
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(Time::MAX.saturating_add(a), Time::MAX);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_millis(1) < Time::from_secs(1));
        assert!(Time::ZERO < Time::from_nanos(1));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Time::from_secs(2).to_string(), "2.000s");
        assert_eq!(Time::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Time::from_micros(4).to_string(), "4.000us");
        assert_eq!(Time::from_nanos(5).to_string(), "5ns");
    }

    #[test]
    fn as_secs_f64_fractional() {
        assert!((Time::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
