//! Trace event model for SherLock-rs.
//!
//! SherLock's Observer (paper §4.1) records, for every traced operation, a
//! timestamp, a thread id, the operation type (heap read, heap write, method
//! entry, method exit), the field or method identity, and the object it acts
//! on. This crate defines that vocabulary and the analyses that operate
//! directly on raw traces:
//!
//! * [`OpRef`]/[`OpId`] — static operation identities, interned process-wide
//!   so that every dynamic instance of `Class::Field` or `Class::Method`
//!   maps to one inference variable (paper §4.2 "Variables").
//! * [`Event`]/[`Trace`] — the per-run execution log, including the delay
//!   records the Perturber needs for its propagation check.
//! * [`windows`] — conflicting-access detection and acquire/release window
//!   extraction with the paper's `Near` filter and per-location-pair cap.
//! * [`durations`] — method duration extraction feeding the
//!   Acquisition-Time-Mostly-Varies hypothesis.
//!
//! # Example
//!
//! ```
//! use sherlock_trace::{OpRef, Time, TraceBuilder, windows::{self, WindowConfig}};
//!
//! let mut tb = TraceBuilder::new();
//! let w = OpRef::field_write("Buffer", "ready").intern();
//! let r = OpRef::field_read("Buffer", "ready").intern();
//! tb.push(Time::from_millis(1), 0, w, 7);
//! tb.push(Time::from_millis(2), 1, r, 7);
//! let trace = tb.finish();
//! let ws = windows::extract(&trace, &WindowConfig::default());
//! assert_eq!(ws.len(), 1);
//! ```

mod event;
mod op;
mod time;

pub mod durations;
pub mod json;
pub mod windows;

pub use event::{AccessClass, DelayRecord, Event, ObjectId, ThreadId, Trace, TraceBuilder};
pub use op::{MethodKind, OpId, OpRef};
pub use time::Time;
