use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Whether a method belongs to the application under analysis or to a
/// library/framework whose internals SherLock cannot see.
///
/// The distinction matters for the Read-Acquire & Write-Release property
/// (paper §2): an *application* method's entry can only acquire and its exit
/// can only release, because SherLock observes the code inside. A *library*
/// API is opaque — its call site may release (e.g. `Thread::Start`) and its
/// return may acquire (e.g. `WaitHandle::WaitOne`) — so both roles stay open,
/// restrained by the Single-Role constraint instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MethodKind {
    /// A method whose body is instrumented (application code).
    App,
    /// A library or framework API traced at its call sites.
    Lib,
}

/// Static identity of a traceable operation.
///
/// SherLock identifies inference variables "with the fully-qualified type of
/// the field (i.e. `ClassName::FieldName`)" and likewise for methods
/// (paper §4.2), assuming all dynamic instances behave the same. `OpRef` is
/// that fully-qualified static name; intern it to get a compact [`OpId`].
///
/// ```
/// use sherlock_trace::OpRef;
/// let id = OpRef::field_read("ByteBuffer", "endOfFile").intern();
/// assert_eq!(id.resolve().to_string(), "Read-ByteBuffer::endOfFile");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpRef {
    /// A read of a heap field.
    FieldRead { class: String, field: String },
    /// A write to a heap field.
    FieldWrite { class: String, field: String },
    /// Entry of a method body ([`MethodKind::App`]) or the instant just
    /// before a library call site ([`MethodKind::Lib`]).
    MethodBegin {
        class: String,
        method: String,
        kind: MethodKind,
    },
    /// Exit of a method body, or the instant just after a library call.
    MethodEnd {
        class: String,
        method: String,
        kind: MethodKind,
    },
}

impl OpRef {
    /// Convenience constructor for a heap-field read.
    pub fn field_read(class: impl Into<String>, field: impl Into<String>) -> Self {
        OpRef::FieldRead {
            class: class.into(),
            field: field.into(),
        }
    }

    /// Convenience constructor for a heap-field write.
    pub fn field_write(class: impl Into<String>, field: impl Into<String>) -> Self {
        OpRef::FieldWrite {
            class: class.into(),
            field: field.into(),
        }
    }

    /// Convenience constructor for an application-method entry.
    pub fn app_begin(class: impl Into<String>, method: impl Into<String>) -> Self {
        OpRef::MethodBegin {
            class: class.into(),
            method: method.into(),
            kind: MethodKind::App,
        }
    }

    /// Convenience constructor for an application-method exit.
    pub fn app_end(class: impl Into<String>, method: impl Into<String>) -> Self {
        OpRef::MethodEnd {
            class: class.into(),
            method: method.into(),
            kind: MethodKind::App,
        }
    }

    /// Convenience constructor for a library-API call site (before the call).
    pub fn lib_begin(class: impl Into<String>, method: impl Into<String>) -> Self {
        OpRef::MethodBegin {
            class: class.into(),
            method: method.into(),
            kind: MethodKind::Lib,
        }
    }

    /// Convenience constructor for a library-API call site (after the call).
    pub fn lib_end(class: impl Into<String>, method: impl Into<String>) -> Self {
        OpRef::MethodEnd {
            class: class.into(),
            method: method.into(),
            kind: MethodKind::Lib,
        }
    }

    /// The class component of the fully-qualified name.
    ///
    /// Used by the Mostly-Paired hypothesis, which pairs acquire and release
    /// synchronizations defined in the same class (paper Eq. 6).
    pub fn class(&self) -> &str {
        match self {
            OpRef::FieldRead { class, .. }
            | OpRef::FieldWrite { class, .. }
            | OpRef::MethodBegin { class, .. }
            | OpRef::MethodEnd { class, .. } => class,
        }
    }

    /// The member (field or method) component of the name.
    pub fn member(&self) -> &str {
        match self {
            OpRef::FieldRead { field, .. } | OpRef::FieldWrite { field, .. } => field,
            OpRef::MethodBegin { method, .. } | OpRef::MethodEnd { method, .. } => method,
        }
    }

    /// Whether this operation is a field access (as opposed to a method
    /// entry/exit).
    pub fn is_field(&self) -> bool {
        matches!(self, OpRef::FieldRead { .. } | OpRef::FieldWrite { .. })
    }

    /// Whether this operation could serve as a *release* synchronization
    /// under the Read-Acquire & Write-Release property: heap writes,
    /// application-method exits, and either end of a library call.
    pub fn can_release(&self) -> bool {
        match self {
            OpRef::FieldRead { .. } => false,
            OpRef::FieldWrite { .. } => true,
            OpRef::MethodBegin { kind, .. } => *kind == MethodKind::Lib,
            OpRef::MethodEnd { .. } => true,
        }
    }

    /// Whether this operation could serve as an *acquire* synchronization:
    /// heap reads, application-method entries, and either end of a library
    /// call.
    pub fn can_acquire(&self) -> bool {
        match self {
            OpRef::FieldRead { .. } => true,
            OpRef::FieldWrite { .. } => false,
            OpRef::MethodBegin { .. } => true,
            OpRef::MethodEnd { kind, .. } => *kind == MethodKind::Lib,
        }
    }

    /// The `OpRef` for the matching end of a method pair: `Begin ↔ End`.
    /// Returns `None` for field accesses.
    pub fn method_counterpart(&self) -> Option<OpRef> {
        match self {
            OpRef::MethodBegin {
                class,
                method,
                kind,
            } => Some(OpRef::MethodEnd {
                class: class.clone(),
                method: method.clone(),
                kind: *kind,
            }),
            OpRef::MethodEnd {
                class,
                method,
                kind,
            } => Some(OpRef::MethodBegin {
                class: class.clone(),
                method: method.clone(),
                kind: *kind,
            }),
            _ => None,
        }
    }

    /// The counterpart field access: `Read ↔ Write` of the same field.
    /// Returns `None` for methods.
    pub fn field_counterpart(&self) -> Option<OpRef> {
        match self {
            OpRef::FieldRead { class, field } => Some(OpRef::FieldWrite {
                class: class.clone(),
                field: field.clone(),
            }),
            OpRef::FieldWrite { class, field } => Some(OpRef::FieldRead {
                class: class.clone(),
                field: field.clone(),
            }),
            _ => None,
        }
    }

    /// Interns this operation in the process-wide registry, returning its
    /// compact id. Interning the same `OpRef` twice yields the same id.
    pub fn intern(&self) -> OpId {
        registry().intern(self)
    }
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpRef::FieldRead { class, field } => write!(f, "Read-{class}::{field}"),
            OpRef::FieldWrite { class, field } => write!(f, "Write-{class}::{field}"),
            OpRef::MethodBegin { class, method, .. } => write!(f, "{class}::{method}-Begin"),
            OpRef::MethodEnd { class, method, .. } => write!(f, "{class}::{method}-End"),
        }
    }
}

/// Compact, process-wide-unique identifier for an interned [`OpRef`].
///
/// Every dynamic instance of the same static operation shares one `OpId`,
/// which is what lets SherLock accumulate observations for the same inference
/// variable within a run and across runs (paper §4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(u32);

impl OpId {
    /// The raw index of this id in the registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Looks up the full static name of this operation.
    pub fn resolve(self) -> OpRef {
        registry().resolve(self)
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpId({} = {})", self.0, self.resolve())
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    by_ref: HashMap<OpRef, OpId>,
    by_id: Vec<OpRef>,
}

impl Registry {
    fn intern(&self, op: &OpRef) -> OpId {
        let mut inner = self.inner.lock().expect("op registry poisoned");
        if let Some(&id) = inner.by_ref.get(op) {
            return id;
        }
        let id = OpId(u32::try_from(inner.by_id.len()).expect("op registry overflow"));
        inner.by_id.push(op.clone());
        inner.by_ref.insert(op.clone(), id);
        id
    }

    fn resolve(&self, id: OpId) -> OpRef {
        let inner = self.inner.lock().expect("op registry poisoned");
        inner.by_id[id.index()].clone()
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner::default()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = OpRef::field_read("C", "f").intern();
        let b = OpRef::field_read("C", "f").intern();
        assert_eq!(a, b);
        assert_eq!(a.resolve(), OpRef::field_read("C", "f"));
    }

    #[test]
    fn distinct_ops_get_distinct_ids() {
        let r = OpRef::field_read("C", "g").intern();
        let w = OpRef::field_write("C", "g").intern();
        let mb = OpRef::app_begin("C", "g").intern();
        let me = OpRef::app_end("C", "g").intern();
        let lb = OpRef::lib_begin("C", "g").intern();
        assert_eq!(
            [r, w, mb, me, lb]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            5
        );
    }

    #[test]
    fn read_acquire_write_release_property() {
        assert!(OpRef::field_read("C", "f").can_acquire());
        assert!(!OpRef::field_read("C", "f").can_release());
        assert!(OpRef::field_write("C", "f").can_release());
        assert!(!OpRef::field_write("C", "f").can_acquire());
    }

    #[test]
    fn app_methods_have_fixed_roles() {
        assert!(OpRef::app_begin("C", "m").can_acquire());
        assert!(!OpRef::app_begin("C", "m").can_release());
        assert!(OpRef::app_end("C", "m").can_release());
        assert!(!OpRef::app_end("C", "m").can_acquire());
    }

    #[test]
    fn lib_apis_keep_both_roles_open() {
        assert!(OpRef::lib_begin("Thread", "Start").can_release());
        assert!(OpRef::lib_begin("Monitor", "Enter").can_acquire());
        assert!(OpRef::lib_end("WaitHandle", "WaitOne").can_acquire());
        assert!(OpRef::lib_end("Monitor", "Exit").can_release());
    }

    #[test]
    fn counterparts() {
        let read = OpRef::field_read("C", "f");
        assert_eq!(read.field_counterpart(), Some(OpRef::field_write("C", "f")));
        assert_eq!(read.method_counterpart(), None);
        let begin = OpRef::app_begin("C", "m");
        assert_eq!(begin.method_counterpart(), Some(OpRef::app_end("C", "m")));
        assert_eq!(begin.field_counterpart(), None);
    }

    #[test]
    fn display_matches_paper_table_format() {
        assert_eq!(
            OpRef::field_write("k8s.ByteBuffer", "endOfFile").to_string(),
            "Write-k8s.ByteBuffer::endOfFile"
        );
        assert_eq!(
            OpRef::app_end("AssertionScope", ".cctor").to_string(),
            "AssertionScope::.cctor-End"
        );
        assert_eq!(
            OpRef::lib_begin("System.Threading.Monitor", "Enter").to_string(),
            "System.Threading.Monitor::Enter-Begin"
        );
    }

    #[test]
    fn class_and_member_accessors() {
        let op = OpRef::app_begin("MessageBroker", "Broadcast");
        assert_eq!(op.class(), "MessageBroker");
        assert_eq!(op.member(), "Broadcast");
        assert!(!op.is_field());
        assert!(OpRef::field_read("A", "b").is_field());
    }
}
