//! Method-duration extraction for the Acquisition-Time-Mostly-Varies
//! hypothesis (paper §2, Eq. 5).
//!
//! SherLock computes every method's duration distribution; a method whose
//! executions all take roughly the same time is unlikely to be an acquire,
//! since acquires block for workload-dependent periods. Durations are matched
//! per thread by pairing each `MethodEnd` with the most recent unmatched
//! `MethodBegin` of the same method on the same thread (handles nesting and
//! recursion LIFO-style).

use std::collections::HashMap;

use crate::event::Trace;
use crate::op::{OpId, OpRef};
use crate::time::Time;

/// Duration samples for one method, keyed by the *begin* operation id (the
/// candidate acquire variable the statistic penalizes).
pub type DurationMap = HashMap<OpId, Vec<Time>>;

/// Extracts per-method duration samples from a trace.
///
/// Unmatched begins (method still running at trace end) and unmatched ends
/// (trace started mid-method; cannot happen with our simulator) are ignored.
pub fn extract(trace: &Trace) -> DurationMap {
    let mut begin_of_end: HashMap<OpId, OpId> = HashMap::new();
    let mut open: HashMap<(u32, OpId), Vec<Time>> = HashMap::new();
    let mut out: DurationMap = HashMap::new();

    for ev in trace.events() {
        match ev.op.resolve() {
            OpRef::MethodBegin { .. } => {
                open.entry((ev.thread.0, ev.op)).or_default().push(ev.time);
            }
            OpRef::MethodEnd { .. } => {
                let begin = *begin_of_end.entry(ev.op).or_insert_with(|| {
                    ev.op
                        .resolve()
                        .method_counterpart()
                        .expect("MethodEnd has a counterpart")
                        .intern()
                });
                if let Some(stack) = open.get_mut(&(ev.thread.0, begin)) {
                    if let Some(start) = stack.pop() {
                        out.entry(begin).or_default().push(ev.time - start);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Summary statistics of a duration sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DurationStats {
    /// Number of samples.
    pub count: usize,
    /// Mean duration in nanoseconds.
    pub mean: f64,
    /// Population standard deviation in nanoseconds.
    pub std_dev: f64,
}

impl DurationStats {
    /// Computes stats over a sample set. Returns `None` for an empty set.
    pub fn from_samples(samples: &[Time]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|t| t.as_nanos() as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|t| {
                let d = t.as_nanos() as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Some(DurationStats {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
        })
    }

    /// Coefficient of variation (σ/μ): how much a method's duration varies
    /// relative to its mean. Zero for constant-duration methods and for a
    /// zero mean.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean <= f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuilder;

    fn begin(m: &str) -> OpId {
        OpRef::app_begin("Dur", m).intern()
    }
    fn end(m: &str) -> OpId {
        OpRef::app_end("Dur", m).intern()
    }

    #[test]
    fn simple_duration() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(10), 0, begin("m"), 1);
        tb.push(Time::from_micros(25), 0, end("m"), 1);
        let d = extract(&tb.finish());
        assert_eq!(d[&begin("m")], vec![Time::from_micros(15)]);
    }

    #[test]
    fn nested_and_recursive_calls_match_lifo() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(0), 0, begin("outer"), 1);
        tb.push(Time::from_micros(1), 0, begin("outer"), 1); // recursion
        tb.push(Time::from_micros(2), 0, end("outer"), 1);
        tb.push(Time::from_micros(10), 0, end("outer"), 1);
        let d = extract(&tb.finish());
        let mut durs = d[&begin("outer")].clone();
        durs.sort();
        assert_eq!(durs, vec![Time::from_micros(1), Time::from_micros(10)]);
    }

    #[test]
    fn per_thread_matching() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(0), 0, begin("p"), 1);
        tb.push(Time::from_micros(1), 1, begin("p"), 1);
        tb.push(Time::from_micros(5), 1, end("p"), 1);
        tb.push(Time::from_micros(9), 0, end("p"), 1);
        let d = extract(&tb.finish());
        let mut durs = d[&begin("p")].clone();
        durs.sort();
        assert_eq!(durs, vec![Time::from_micros(4), Time::from_micros(9)]);
    }

    #[test]
    fn unmatched_begin_ignored() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(0), 0, begin("u"), 1);
        let d = extract(&tb.finish());
        assert!(!d.contains_key(&begin("u")));
    }

    #[test]
    fn stats_constant_duration_has_zero_cv() {
        let s = DurationStats::from_samples(&[
            Time::from_micros(5),
            Time::from_micros(5),
            Time::from_micros(5),
        ])
        .unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean - 5000.0).abs() < 1e-9);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn stats_varying_duration_has_positive_cv() {
        let s = DurationStats::from_samples(&[Time::from_micros(1), Time::from_micros(9)]).unwrap();
        assert!(s.coefficient_of_variation() > 0.5);
    }

    #[test]
    fn stats_empty_is_none() {
        assert!(DurationStats::from_samples(&[]).is_none());
    }
}
