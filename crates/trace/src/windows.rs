//! Conflicting-access detection and acquire/release window extraction
//! (paper §4.1, "Forming acquire/release windows").
//!
//! For every pair of conflicting accesses `a` (earlier) and `b` (later) that
//! are temporally close (`T_b − T_a ≤ Near`), SherLock extracts the
//! operations executing between them: those from `a`'s thread form the
//! *release window* and those from `b`'s thread the *acquire window*. The
//! endpoints themselves are included — for variable-based synchronization the
//! conflicting write *is* the release and the conflicting read *is* the
//! acquire (paper Fig. 3.B).
//!
//! A static location pair may execute many times (e.g. inside a loop), so at
//! most [`WindowConfig::cap_per_pair`] windows are formed per pair of static
//! locations (15 in the paper).

use std::collections::{BTreeMap, HashMap};

use crate::event::{AccessClass, ObjectId, ThreadId, Trace};
use crate::op::{OpId, OpRef};
use crate::time::Time;

/// Parameters of window extraction.
#[derive(Clone, Debug)]
pub struct WindowConfig {
    /// Maximum physical-time gap between two conflicting accesses for them to
    /// form a window (the paper's `Near`, 1 s by default; Table 7 sweeps it).
    pub near: Time,
    /// Upper bound on the number of windows one static location pair can
    /// form (15 in the paper).
    pub cap_per_pair: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            near: Time::from_secs(1),
            cap_per_pair: 15,
        }
    }
}

/// A synchronization candidate inside a window: a static operation and the
/// number of its dynamic instances observed in the window.
///
/// The Solver subtracts each candidate's probability variable only once no
/// matter how many instances appear (paper §4.2), but the occurrence count
/// feeds the Synchronizations-are-Rare penalty (Eq. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Static operation identity.
    pub op: OpId,
    /// Dynamic instances of `op` inside this window.
    pub count: u32,
}

/// An acquire/release window extracted around one dynamic conflicting pair.
#[derive(Clone, Debug)]
pub struct Window {
    /// Static location of the earlier access `a`.
    pub a_op: OpId,
    /// Static location of the later access `b`.
    pub b_op: OpId,
    /// Thread of `a` (the releasing side).
    pub a_thread: ThreadId,
    /// Thread of `b` (the acquiring side).
    pub b_thread: ThreadId,
    /// Timestamp of `a`.
    pub a_time: Time,
    /// Timestamp of `b`.
    pub b_time: Time,
    /// Object both accesses touched.
    pub object: ObjectId,
    /// Release candidates: operations from `a`'s thread in `[T_a, T_b]`,
    /// deduplicated, with occurrence counts.
    pub release: Vec<Candidate>,
    /// Acquire candidates: operations from `b`'s thread in `[T_a, T_b]`.
    pub acquire: Vec<Candidate>,
    /// Whether any release candidate is release-capable under the
    /// Read-Acquire & Write-Release property.
    pub release_capable: bool,
    /// Whether any acquire candidate is acquire-capable.
    pub acquire_capable: bool,
}

impl Window {
    /// The ordered static location pair identifying this window's origin.
    pub fn pair(&self) -> (OpId, OpId) {
        (self.a_op, self.b_op)
    }

    /// Whether this window witnesses a data race: no operation in the
    /// release window can release, or none in the acquire window can acquire
    /// (paper §4.3, "A special type of observation").
    pub fn is_racy(&self) -> bool {
        !self.release_capable || !self.acquire_capable
    }
}

#[derive(Clone)]
struct OpMeta {
    loc: Option<String>,
    can_release: bool,
    can_acquire: bool,
}

fn op_meta(cache: &mut HashMap<OpId, OpMeta>, op: OpId) -> OpMeta {
    cache
        .entry(op)
        .or_insert_with(|| {
            let r = op.resolve();
            let loc = match &r {
                OpRef::FieldRead { class, field } | OpRef::FieldWrite { class, field } => {
                    Some(format!("{class}::{field}"))
                }
                // Thread-unsafe library call sites conflict per-object; the
                // object id alone identifies the location.
                OpRef::MethodBegin { .. } | OpRef::MethodEnd { .. } => None,
            };
            OpMeta {
                loc,
                can_release: r.can_release(),
                can_acquire: r.can_acquire(),
            }
        })
        .clone()
}

/// Extracts all acquire/release windows from a trace.
///
/// Two events conflict when they touch the same location (same object and —
/// for field accesses — the same fully-qualified field), come from different
/// threads, at least one is a write, and their time gap is at most
/// [`WindowConfig::near`]. Windows are returned in order of their later
/// endpoint.
pub fn extract(trace: &Trace, cfg: &WindowConfig) -> Vec<Window> {
    let _s = sherlock_obs::span("windows.extract");
    let events = trace.events();
    let mut meta_cache: HashMap<OpId, OpMeta> = HashMap::new();

    // Group access events by location.
    #[derive(PartialEq, Eq, Hash)]
    enum LocKey {
        Field(u64, String),
        Object(u64),
    }
    let mut groups: HashMap<LocKey, Vec<usize>> = HashMap::new();
    for (idx, ev) in events.iter().enumerate() {
        if ev.access == AccessClass::None {
            continue;
        }
        let meta = op_meta(&mut meta_cache, ev.op);
        let key = match meta.loc {
            Some(loc) => LocKey::Field(ev.object.0, loc),
            None => LocKey::Object(ev.object.0),
        };
        groups.entry(key).or_default().push(idx);
    }

    // Collect candidate pairs first, then apply the per-pair cap in a global
    // deterministic order (later endpoint ascending, nearer earlier endpoint
    // first): a static pair can span several location groups (same field on
    // different objects), so capping during the per-group scan would depend
    // on group iteration order.
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for group in groups.values() {
        for (gj, &j) in group.iter().enumerate() {
            let ej = &events[j];
            for &i in group[..gj].iter().rev() {
                let ei = &events[i];
                if ej.time - ei.time > cfg.near {
                    break;
                }
                if ei.thread == ej.thread || !ei.access.conflicts_with(ej.access) {
                    continue;
                }
                candidates.push((i, j));
            }
        }
    }
    candidates.sort_unstable_by_key(|&(i, j)| (j, std::cmp::Reverse(i)));

    let mut per_pair: HashMap<(OpId, OpId), usize> = HashMap::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (i, j) in candidates {
        let count = per_pair.entry((events[i].op, events[j].op)).or_insert(0);
        if *count >= cfg.cap_per_pair {
            continue;
        }
        *count += 1;
        pairs.push((i, j));
    }
    // Output order: by the later endpoint, then the earlier.
    pairs.sort_unstable_by_key(|&(i, j)| (j, i));

    let out: Vec<Window> = pairs
        .into_iter()
        .map(|(i, j)| {
            sherlock_obs::histogram!("windows.span_events").observe((j - i + 1) as u64);
            build_window(trace, i, j, &mut meta_cache)
        })
        .collect();
    sherlock_obs::counter!("windows.extracted").add(out.len() as u64);
    out
}

fn build_window(
    trace: &Trace,
    i: usize,
    j: usize,
    meta_cache: &mut HashMap<OpId, OpMeta>,
) -> Window {
    let events = trace.events();
    let a = &events[i];
    let b = &events[j];
    let mut release: BTreeMap<OpId, u32> = BTreeMap::new();
    let mut acquire: BTreeMap<OpId, u32> = BTreeMap::new();
    for ev in &events[i..=j] {
        if ev.thread == a.thread {
            *release.entry(ev.op).or_insert(0) += 1;
        } else if ev.thread == b.thread {
            *acquire.entry(ev.op).or_insert(0) += 1;
        }
    }
    let release: Vec<Candidate> = release
        .into_iter()
        .map(|(op, count)| Candidate { op, count })
        .collect();
    let acquire: Vec<Candidate> = acquire
        .into_iter()
        .map(|(op, count)| Candidate { op, count })
        .collect();
    let release_capable = release
        .iter()
        .any(|c| op_meta(meta_cache, c.op).can_release);
    let acquire_capable = acquire
        .iter()
        .any(|c| op_meta(meta_cache, c.op).can_acquire);
    Window {
        a_op: a.op,
        b_op: b.op,
        a_thread: a.thread,
        b_thread: b.thread,
        a_time: a.time,
        b_time: b.time,
        object: a.object,
        release,
        acquire,
        release_capable,
        acquire_capable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuilder;

    fn w(class: &str, field: &str) -> OpId {
        OpRef::field_write(class, field).intern()
    }
    fn r(class: &str, field: &str) -> OpId {
        OpRef::field_read(class, field).intern()
    }

    #[test]
    fn basic_write_read_window() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, w("W", "flag"), 9);
        tb.push(
            Time::from_millis(2),
            0,
            OpRef::app_end("W", "produce").intern(),
            9,
        );
        tb.push(
            Time::from_millis(3),
            1,
            OpRef::app_begin("W", "consume").intern(),
            9,
        );
        tb.push(Time::from_millis(4), 1, r("W", "flag"), 9);
        let ws = extract(&tb.finish(), &WindowConfig::default());
        assert_eq!(ws.len(), 1);
        let win = &ws[0];
        assert_eq!(win.a_op, w("W", "flag"));
        assert_eq!(win.b_op, r("W", "flag"));
        assert_eq!(win.release.len(), 2); // flag write + produce-End
        assert_eq!(win.acquire.len(), 2); // consume-Begin + flag read
        assert!(win.release_capable && win.acquire_capable);
        assert!(!win.is_racy());
    }

    #[test]
    fn near_filter_drops_distant_pairs() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(0), 0, w("N", "x"), 1);
        tb.push(Time::from_secs(2), 1, r("N", "x"), 1);
        assert!(extract(&tb.finish(), &WindowConfig::default()).is_empty());

        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(0), 0, w("N", "x"), 1);
        tb.push(Time::from_secs(2), 1, r("N", "x"), 1);
        let wide = WindowConfig {
            near: Time::from_secs(100),
            ..WindowConfig::default()
        };
        assert_eq!(extract(&tb.finish(), &wide).len(), 1);
    }

    #[test]
    fn same_thread_accesses_do_not_conflict() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, w("S", "x"), 1);
        tb.push(Time::from_millis(2), 0, r("S", "x"), 1);
        assert!(extract(&tb.finish(), &WindowConfig::default()).is_empty());
    }

    #[test]
    fn read_read_does_not_conflict() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, r("RR", "x"), 1);
        tb.push(Time::from_millis(2), 1, r("RR", "x"), 1);
        assert!(extract(&tb.finish(), &WindowConfig::default()).is_empty());
    }

    #[test]
    fn different_objects_do_not_conflict() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, w("O", "x"), 1);
        tb.push(Time::from_millis(2), 1, r("O", "x"), 2);
        assert!(extract(&tb.finish(), &WindowConfig::default()).is_empty());
    }

    #[test]
    fn different_fields_on_same_object_do_not_conflict() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, w("F", "x"), 1);
        tb.push(Time::from_millis(2), 1, r("F", "y"), 1);
        assert!(extract(&tb.finish(), &WindowConfig::default()).is_empty());
    }

    #[test]
    fn cap_limits_windows_per_static_pair() {
        let cfg = WindowConfig {
            cap_per_pair: 3,
            ..WindowConfig::default()
        };
        let mut tb = TraceBuilder::new();
        let mut t = 0;
        for _ in 0..10 {
            tb.push(Time::from_micros(t), 0, w("Cap", "x"), 1);
            t += 1;
            tb.push(Time::from_micros(t), 1, r("Cap", "x"), 1);
            t += 1;
        }
        let ws = extract(&tb.finish(), &cfg);
        // Both (write→read) and (read→write) static pairs exist; each capped.
        let wr = ws
            .iter()
            .filter(|x| x.pair() == (w("Cap", "x"), r("Cap", "x")))
            .count();
        let rw = ws
            .iter()
            .filter(|x| x.pair() == (r("Cap", "x"), w("Cap", "x")))
            .count();
        assert_eq!(wr, 3);
        assert_eq!(rw, 3);
    }

    #[test]
    fn candidates_deduplicate_with_counts() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(1), 0, w("Dup", "x"), 1);
        for k in 2..7 {
            tb.push(
                Time::from_micros(k),
                1,
                OpRef::app_begin("Dup", "poll").intern(),
                1,
            );
        }
        tb.push(Time::from_micros(7), 1, r("Dup", "x"), 1);
        let ws = extract(&tb.finish(), &WindowConfig::default());
        assert_eq!(ws.len(), 1);
        let poll = OpRef::app_begin("Dup", "poll").intern();
        let cand = ws[0].acquire.iter().find(|c| c.op == poll).unwrap();
        assert_eq!(cand.count, 5);
    }

    #[test]
    fn racy_when_release_side_has_only_reads() {
        // Spin-loop reads *before* the write: the (read → write) pair has a
        // release window of pure reads, which cannot release — a witnessed
        // race (the reason flags "should be marked volatile", paper §5.5).
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(1), 1, r("Spin", "f"), 1);
        tb.push(Time::from_micros(2), 1, r("Spin", "f"), 1);
        tb.push(Time::from_micros(3), 0, w("Spin", "f"), 1);
        let ws = extract(&tb.finish(), &WindowConfig::default());
        // Two (read→write) windows, both racy.
        assert!(!ws.is_empty());
        assert!(ws.iter().all(|x| x.is_racy()));
        assert!(ws.iter().all(|x| !x.release_capable));
    }

    #[test]
    fn write_write_conflicts() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(1), 0, w("WW", "x"), 1);
        tb.push(Time::from_micros(2), 1, w("WW", "x"), 1);
        let ws = extract(&tb.finish(), &WindowConfig::default());
        assert_eq!(ws.len(), 1);
        // The acquire window holds only a write → cannot acquire → racy.
        assert!(ws[0].is_racy());
        assert!(!ws[0].acquire_capable);
        assert!(ws[0].release_capable);
    }

    #[test]
    fn thread_unsafe_api_calls_conflict_per_object() {
        let add_b = OpRef::lib_begin("List", "Add").intern();
        let add_e = OpRef::lib_end("List", "Add").intern();
        let mut tb = TraceBuilder::new();
        tb.push_classified(Time::from_micros(1), 0, add_b, 5, AccessClass::Write);
        tb.push_classified(Time::from_micros(2), 0, add_e, 5, AccessClass::None);
        tb.push_classified(Time::from_micros(3), 1, add_b, 5, AccessClass::Write);
        tb.push_classified(Time::from_micros(4), 1, add_e, 5, AccessClass::None);
        let ws = extract(&tb.finish(), &WindowConfig::default());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].pair(), (add_b, add_b));
        // Lib begins are release- and acquire-capable.
        assert!(!ws[0].is_racy());
    }

    #[test]
    fn third_party_thread_events_are_excluded_from_candidates() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(1), 0, w("TP", "x"), 1);
        tb.push(
            Time::from_micros(2),
            2,
            OpRef::app_begin("TP", "noise").intern(),
            1,
        );
        tb.push(Time::from_micros(3), 1, r("TP", "x"), 1);
        let ws = extract(&tb.finish(), &WindowConfig::default());
        assert_eq!(ws.len(), 1);
        let noise = OpRef::app_begin("TP", "noise").intern();
        assert!(ws[0].release.iter().all(|c| c.op != noise));
        assert!(ws[0].acquire.iter().all(|c| c.op != noise));
    }

    #[test]
    fn windows_sorted_by_later_endpoint() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_micros(1), 0, w("Ord", "x"), 1);
        tb.push(Time::from_micros(2), 1, r("Ord", "x"), 1);
        tb.push(Time::from_micros(3), 0, w("Ord", "y"), 1);
        tb.push(Time::from_micros(4), 1, r("Ord", "y"), 1);
        let ws = extract(&tb.finish(), &WindowConfig::default());
        assert!(ws.windows(2).all(|p| p[0].b_time <= p[1].b_time));
    }
}
