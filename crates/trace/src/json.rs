//! Dependency-free JSON serialization of [`Trace`] files.
//!
//! The on-disk shape is byte-compatible with what the previous
//! `serde`-derived implementation produced (externally-tagged `OpRef`
//! variants, unit-variant strings for [`AccessClass`] and [`MethodKind`],
//! newtype ids as bare numbers), so trace files written by older builds parse
//! unchanged:
//!
//! ```json
//! {"events":[{"time":1000,"thread":0,
//!             "op":{"FieldWrite":{"class":"Doc","field":"ready"}},
//!             "object":7,"access":"Write"}],
//!  "delays":[{"thread":1,"op":{...},"start":5,"end":105}]}
//! ```
//!
//! `OpId`s serialize as their fully-qualified [`OpRef`]; deserialization
//! re-interns, so ids survive across processes even though the interning
//! registry does not.

use sherlock_obs::json::{Json, JsonError};

use crate::event::{AccessClass, DelayRecord, Event, ObjectId, ThreadId, Trace};
use crate::op::{MethodKind, OpId, OpRef};
use crate::time::Time;

/// Serializes a trace as compact JSON.
pub fn to_json(trace: &Trace) -> String {
    to_value(trace).render()
}

/// Serializes a trace as a [`Json`] value tree (for embedding in larger
/// documents, e.g. the `sherlock-serve` wire protocol).
pub fn to_value(trace: &Trace) -> Json {
    let events: Vec<Json> = trace.events().iter().map(event_to_json).collect();
    let delays: Vec<Json> = trace.delays().iter().map(delay_to_json).collect();
    Json::Obj(vec![
        ("events".to_string(), Json::Arr(events)),
        ("delays".to_string(), Json::Arr(delays)),
    ])
}

/// Serializes one interned op as its externally-tagged [`OpRef`] value (the
/// same shape ops take inside serialized events). Snapshot files in
/// `sherlock-store` reuse this so op references survive re-interning.
pub fn op_to_value(op: OpId) -> Json {
    op_to_json(op)
}

/// Parses an op value produced by [`op_to_value`], re-interning it in this
/// process's registry.
///
/// # Errors
///
/// Returns a message describing the schema violation.
pub fn op_from_value(v: &Json) -> Result<OpId, String> {
    parse_op(Some(v), "op")
}

fn op_to_json(op: OpId) -> Json {
    let (tag, members) = match op.resolve() {
        OpRef::FieldRead { class, field } => (
            "FieldRead",
            vec![
                ("class".to_string(), Json::Str(class)),
                ("field".to_string(), Json::Str(field)),
            ],
        ),
        OpRef::FieldWrite { class, field } => (
            "FieldWrite",
            vec![
                ("class".to_string(), Json::Str(class)),
                ("field".to_string(), Json::Str(field)),
            ],
        ),
        OpRef::MethodBegin {
            class,
            method,
            kind,
        } => (
            "MethodBegin",
            vec![
                ("class".to_string(), Json::Str(class)),
                ("method".to_string(), Json::Str(method)),
                ("kind".to_string(), Json::from(kind_name(kind))),
            ],
        ),
        OpRef::MethodEnd {
            class,
            method,
            kind,
        } => (
            "MethodEnd",
            vec![
                ("class".to_string(), Json::Str(class)),
                ("method".to_string(), Json::Str(method)),
                ("kind".to_string(), Json::from(kind_name(kind))),
            ],
        ),
    };
    Json::Obj(vec![(tag.to_string(), Json::Obj(members))])
}

fn kind_name(kind: MethodKind) -> &'static str {
    match kind {
        MethodKind::App => "App",
        MethodKind::Lib => "Lib",
    }
}

fn access_name(access: AccessClass) -> &'static str {
    match access {
        AccessClass::None => "None",
        AccessClass::Read => "Read",
        AccessClass::Write => "Write",
    }
}

fn event_to_json(e: &Event) -> Json {
    Json::Obj(vec![
        ("time".to_string(), Json::from(e.time.as_nanos())),
        ("thread".to_string(), Json::from(u64::from(e.thread.0))),
        ("op".to_string(), op_to_json(e.op)),
        ("object".to_string(), Json::from(e.object.0)),
        ("access".to_string(), Json::from(access_name(e.access))),
    ])
}

fn delay_to_json(d: &DelayRecord) -> Json {
    Json::Obj(vec![
        ("thread".to_string(), Json::from(u64::from(d.thread.0))),
        ("op".to_string(), op_to_json(d.op)),
        ("start".to_string(), Json::from(d.start.as_nanos())),
        ("end".to_string(), Json::from(d.end.as_nanos())),
    ])
}

/// Parses a trace file produced by [`to_json`] (or the older serde format).
///
/// # Errors
///
/// Returns a message describing the first syntax or schema violation,
/// including out-of-order event timestamps.
pub fn from_json(text: &str) -> Result<Trace, String> {
    let doc = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
    from_value(&doc)
}

/// Parses a trace from an already-parsed [`Json`] value (the subtree shape
/// [`to_value`] produces).
///
/// # Errors
///
/// Returns a message describing the first schema violation, including
/// out-of-order event timestamps.
pub fn from_value(doc: &Json) -> Result<Trace, String> {
    let events_json = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or("missing \"events\" array")?;
    let delays_json = doc
        .get("delays")
        .and_then(Json::as_array)
        .ok_or("missing \"delays\" array")?;

    let mut events = Vec::with_capacity(events_json.len());
    let mut last = Time::ZERO;
    for (i, e) in events_json.iter().enumerate() {
        let time = Time::from_nanos(
            e.get("time")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: missing numeric \"time\""))?,
        );
        if time < last {
            return Err(format!("event {i}: timestamps out of order"));
        }
        last = time;
        events.push(Event {
            time,
            thread: ThreadId(thread_field(e, i)?),
            op: parse_op(e.get("op"), &format!("event {i}"))?,
            object: ObjectId(
                e.get("object")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: missing numeric \"object\""))?,
            ),
            access: match e.get("access").and_then(Json::as_str) {
                Some("None") => AccessClass::None,
                Some("Read") => AccessClass::Read,
                Some("Write") => AccessClass::Write,
                other => return Err(format!("event {i}: bad access {other:?}")),
            },
        });
    }

    let mut delays = Vec::with_capacity(delays_json.len());
    for (i, d) in delays_json.iter().enumerate() {
        let field = |name: &str| {
            d.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("delay {i}: missing numeric {name:?}"))
        };
        delays.push(DelayRecord {
            thread: ThreadId(thread_field(d, i)?),
            op: parse_op(d.get("op"), &format!("delay {i}"))?,
            start: Time::from_nanos(field("start")?),
            end: Time::from_nanos(field("end")?),
        });
    }

    Ok(Trace::from_parts(events, delays))
}

fn thread_field(v: &Json, i: usize) -> Result<u32, String> {
    v.get("thread")
        .and_then(Json::as_u64)
        .and_then(|t| u32::try_from(t).ok())
        .ok_or_else(|| format!("record {i}: missing u32 \"thread\""))
}

fn parse_op(v: Option<&Json>, ctx: &str) -> Result<OpId, String> {
    let obj = v
        .and_then(Json::as_object)
        .ok_or_else(|| format!("{ctx}: missing \"op\" object"))?;
    let [(tag, body)] = obj else {
        return Err(format!("{ctx}: op must have exactly one variant tag"));
    };
    let text = |name: &str| {
        body.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{ctx}: op missing string {name:?}"))
    };
    let kind = || match body.get("kind").and_then(Json::as_str) {
        Some("App") => Ok(MethodKind::App),
        Some("Lib") => Ok(MethodKind::Lib),
        other => Err(format!("{ctx}: bad method kind {other:?}")),
    };
    let op = match tag.as_str() {
        "FieldRead" => OpRef::FieldRead {
            class: text("class")?,
            field: text("field")?,
        },
        "FieldWrite" => OpRef::FieldWrite {
            class: text("class")?,
            field: text("field")?,
        },
        "MethodBegin" => OpRef::MethodBegin {
            class: text("class")?,
            method: text("method")?,
            kind: kind()?,
        },
        "MethodEnd" => OpRef::MethodEnd {
            class: text("class")?,
            method: text("method")?,
            kind: kind()?,
        },
        other => return Err(format!("{ctx}: unknown op variant {other:?}")),
    };
    Ok(op.intern())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut tb = TraceBuilder::new();
        let w = OpRef::field_write("Doc \"quoted\\path\"", "ready\n").intern();
        let r = OpRef::field_read("Doc \"quoted\\path\"", "ready\n").intern();
        let lb = OpRef::lib_begin("System.Threading.Monitor", "Enter").intern();
        let ae = OpRef::app_end("Worker", "Run").intern();
        tb.push(Time::from_nanos(10), 0, w, 7);
        tb.push(Time::from_nanos(20), 0, lb, 3);
        tb.push(Time::from_nanos(30), 1, r, 7);
        tb.push(Time::from_nanos(30), 1, ae, 9);
        tb.push_delay(1, w, Time::from_nanos(12), Time::from_nanos(29));
        tb.finish()
    }

    #[test]
    fn round_trips_events_delays_and_special_chars() {
        let t = sample_trace();
        let json = to_json(&t);
        let back = from_json(&json).expect("parse back");
        assert_eq!(back.events(), t.events());
        assert_eq!(back.delays(), t.delays());
    }

    #[test]
    fn shape_matches_legacy_serde_format() {
        let mut tb = TraceBuilder::new();
        tb.push(
            Time::from_nanos(5),
            2,
            OpRef::field_read("C", "f").intern(),
            1,
        );
        let json = to_json(&tb.finish());
        assert_eq!(
            json,
            r#"{"events":[{"time":5,"thread":2,"op":{"FieldRead":{"class":"C","field":"f"}},"object":1,"access":"Read"}],"delays":[]}"#
        );
    }

    #[test]
    fn rejects_out_of_order_and_malformed() {
        let bad_order = r#"{"events":[
            {"time":9,"thread":0,"op":{"FieldRead":{"class":"C","field":"f"}},"object":1,"access":"Read"},
            {"time":3,"thread":0,"op":{"FieldRead":{"class":"C","field":"f"}},"object":1,"access":"Read"}
        ],"delays":[]}"#;
        assert!(from_json(bad_order).unwrap_err().contains("out of order"));
        assert!(from_json("{}").is_err());
        assert!(from_json("not json").is_err());
        let bad_variant = r#"{"events":[{"time":1,"thread":0,"op":{"Nope":{}},"object":1,"access":"Read"}],"delays":[]}"#;
        assert!(from_json(bad_variant)
            .unwrap_err()
            .contains("unknown op variant"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceBuilder::new().finish();
        let back = from_json(&to_json(&t)).unwrap();
        assert!(back.is_empty());
        assert!(back.delays().is_empty());
    }
}
