use std::fmt;

use crate::op::{OpId, OpRef};
use crate::time::Time;

/// Identifier of a simulated thread within one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identity of the object an operation acts on.
///
/// For field accesses this plays the role of the paper's "memory address";
/// for method events it is the "parent object id". `ObjectId::STATIC` marks
/// static members and free functions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The shared identity used for static fields and static methods.
    pub const STATIC: ObjectId = ObjectId(0);
}

/// Memory-access classification of a dynamic event, used for conflicting-pair
/// detection.
///
/// Heap reads/writes classify themselves. Call sites of *thread-unsafe
/// library APIs* (the paper instruments 14 `System.Collections.Generic`
/// classes) are additionally classified read- or write-like so that e.g. two
/// concurrent `List.Add` calls on the same object form a conflicting pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Not a memory access (plain method entry/exit).
    #[default]
    None,
    /// Read-like access.
    Read,
    /// Write-like access.
    Write,
}

impl AccessClass {
    /// Whether two accesses on the same location conflict (at least one is a
    /// write).
    pub fn conflicts_with(self, other: AccessClass) -> bool {
        matches!(
            (self, other),
            (AccessClass::Write, AccessClass::Write)
                | (AccessClass::Write, AccessClass::Read)
                | (AccessClass::Read, AccessClass::Write)
        )
    }
}

/// One log entry: a dynamic instance of a static operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual timestamp at which the operation executed.
    pub time: Time,
    /// Executing thread.
    pub thread: ThreadId,
    /// Interned static identity.
    pub op: OpId,
    /// Object acted upon (memory identity for conflict detection).
    pub object: ObjectId,
    /// Memory-access classification (set for field accesses and for
    /// thread-unsafe library call sites).
    pub access: AccessClass,
}

/// A delay the Perturber injected before a dynamic operation instance.
///
/// The Perturber injects a delay right before every dynamic instance of every
/// currently inferred release (paper §4.3) and then checks whether the delay
/// propagated to the other thread of each window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayRecord {
    /// Thread that was delayed.
    pub thread: ThreadId,
    /// Operation the delay was injected before.
    pub op: OpId,
    /// Virtual time at which the delay began.
    pub start: Time,
    /// Virtual time at which the delayed operation finally executed.
    pub end: Time,
}

/// The execution log of one run: time-ordered events plus delay records.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
    delays: Vec<DelayRecord>,
}

impl Trace {
    /// Reassembles a trace from parts (used by [`crate::json`] after
    /// validating event ordering).
    pub(crate) fn from_parts(events: Vec<Event>, delays: Vec<DelayRecord>) -> Trace {
        Trace { events, delays }
    }

    /// All events, in nondecreasing timestamp order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// All delays injected during this run.
    pub fn delays(&self) -> &[DelayRecord] {
        &self.delays
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the final event, or zero for an empty trace.
    pub fn end_time(&self) -> Time {
        self.events.last().map_or(Time::ZERO, |e| e.time)
    }

    /// Distinct static operations appearing in the trace.
    pub fn distinct_ops(&self) -> std::collections::BTreeSet<OpId> {
        self.events.iter().map(|e| e.op).collect()
    }

    /// A 64-bit FNV-1a fingerprint of the schedule this trace records.
    ///
    /// Operations are hashed by their *resolved* static names rather than
    /// their raw [`OpId`]s: interning order is process-global and depends on
    /// which workload ran first, so raw ids would make equal schedules hash
    /// differently across processes and across parallel explorer workers.
    /// Timestamps are deliberately excluded — per-operation cost jitter is a
    /// function of the seed, so including the clock would make every seed
    /// look like a new schedule. Two traces hash equally iff they interleave
    /// the same operations on the same threads/objects in the same order
    /// (with the same delay placements) — the identity the schedule Explorer
    /// deduplicates on.
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let mut names: std::collections::HashMap<OpId, String> = std::collections::HashMap::new();
        let mut op_key = |op: OpId| -> String {
            names
                .entry(op)
                .or_insert_with(|| {
                    let r = op.resolve();
                    // Display alone cannot distinguish App from Lib method
                    // events; prefix a kind discriminant.
                    let kind = match r {
                        OpRef::FieldRead { .. } => 'r',
                        OpRef::FieldWrite { .. } => 'w',
                        OpRef::MethodBegin { kind, .. } | OpRef::MethodEnd { kind, .. } => {
                            match kind {
                                crate::op::MethodKind::App => 'a',
                                crate::op::MethodKind::Lib => 'l',
                            }
                        }
                    };
                    format!("{kind}{r}")
                })
                .clone()
        };
        for ev in &self.events {
            mix(&ev.thread.0.to_le_bytes());
            mix(&ev.object.0.to_le_bytes());
            mix(&[ev.access as u8]);
            let k = op_key(ev.op);
            mix(k.as_bytes());
            mix(&[0xff]);
        }
        for d in &self.delays {
            mix(&d.thread.0.to_le_bytes());
            let k = op_key(d.op);
            mix(k.as_bytes());
            mix(&[0xfe]);
        }
        h
    }
}

/// Incremental builder for a [`Trace`].
///
/// The simulator's Observer hook appends events as threads execute; events
/// must be pushed in nondecreasing timestamp order (the virtual clock is
/// monotonic).
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, deriving its [`AccessClass`] from the operation kind
    /// (field reads/writes classify themselves; everything else is
    /// [`AccessClass::None`]).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous event's timestamp.
    pub fn push(&mut self, time: Time, thread: u32, op: OpId, object: u64) {
        let access = match op.resolve() {
            OpRef::FieldRead { .. } => AccessClass::Read,
            OpRef::FieldWrite { .. } => AccessClass::Write,
            _ => AccessClass::None,
        };
        self.push_classified(time, thread, op, object, access);
    }

    /// Appends an event with an explicit access classification (used for
    /// thread-unsafe library call sites).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous event's timestamp.
    pub fn push_classified(
        &mut self,
        time: Time,
        thread: u32,
        op: OpId,
        object: u64,
        access: AccessClass,
    ) {
        if let Some(last) = self.trace.events.last() {
            assert!(
                time >= last.time,
                "events must be pushed in timestamp order ({time:?} < {:?})",
                last.time
            );
        }
        self.trace.events.push(Event {
            time,
            thread: ThreadId(thread),
            op,
            object: ObjectId(object),
            access,
        });
    }

    /// Records an injected delay.
    pub fn push_delay(&mut self, thread: u32, op: OpId, start: Time, end: Time) {
        self.trace.delays.push(DelayRecord {
            thread: ThreadId(thread),
            op,
            start,
            end,
        });
    }

    /// Finishes the builder, returning the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> OpId {
        OpRef::field_write("Evt", "x").intern()
    }

    #[test]
    fn builder_orders_and_classifies() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_nanos(1), 0, op(), 1);
        tb.push(
            Time::from_nanos(2),
            1,
            OpRef::field_read("Evt", "x").intern(),
            1,
        );
        tb.push(
            Time::from_nanos(2),
            0,
            OpRef::app_begin("Evt", "m").intern(),
            1,
        );
        let t = tb.finish();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].access, AccessClass::Write);
        assert_eq!(t.events()[1].access, AccessClass::Read);
        assert_eq!(t.events()[2].access, AccessClass::None);
        assert_eq!(t.end_time(), Time::from_nanos(2));
    }

    #[test]
    #[should_panic(expected = "timestamp order")]
    fn builder_rejects_time_travel() {
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_nanos(5), 0, op(), 1);
        tb.push(Time::from_nanos(4), 0, op(), 1);
    }

    #[test]
    fn conflict_matrix() {
        use AccessClass::*;
        assert!(Write.conflicts_with(Write));
        assert!(Write.conflicts_with(Read));
        assert!(Read.conflicts_with(Write));
        assert!(!Read.conflicts_with(Read));
        assert!(!None.conflicts_with(Write));
        assert!(!Write.conflicts_with(None));
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.end_time(), Time::ZERO);
        assert!(t.distinct_ops().is_empty());
    }

    #[test]
    fn delay_records_survive() {
        let mut tb = TraceBuilder::new();
        tb.push_delay(3, op(), Time::from_millis(1), Time::from_millis(101));
        let t = tb.finish();
        assert_eq!(t.delays().len(), 1);
        assert_eq!(t.delays()[0].thread, ThreadId(3));
        assert_eq!(
            t.delays()[0].end - t.delays()[0].start,
            Time::from_millis(100)
        );
    }

    #[test]
    fn stable_hash_distinguishes_schedules() {
        let w = OpRef::field_write("Hash", "x").intern();
        let r = OpRef::field_read("Hash", "x").intern();
        let build = |order: &[(u64, u32, OpId)]| {
            let mut tb = TraceBuilder::new();
            for &(t, thread, op) in order {
                tb.push(Time::from_nanos(t), thread, op, 1);
            }
            tb.finish()
        };
        let a = build(&[(1, 0, w), (2, 1, r)]);
        let b = build(&[(1, 0, w), (2, 1, r)]);
        let c = build(&[(1, 1, r), (2, 0, w)]);
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
        // Clock jitter does not perturb the fingerprint: the hash captures
        // the interleaving, not the seeded per-op costs.
        let jittered = build(&[(10, 0, w), (250, 1, r)]);
        assert_eq!(a.stable_hash(), jittered.stable_hash());
        // App vs Lib method events with the same printed name stay distinct.
        let app = build(&[(1, 0, OpRef::app_begin("Hash", "m").intern())]);
        let lib = build(&[(1, 0, OpRef::lib_begin("Hash", "m").intern())]);
        assert_ne!(app.stable_hash(), lib.stable_hash());
        // Delays contribute to the fingerprint.
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_nanos(1), 0, w, 1);
        tb.push(Time::from_nanos(2), 1, r, 1);
        tb.push_delay(0, w, Time::ZERO, Time::from_nanos(1));
        assert_ne!(tb.finish().stable_hash(), a.stable_hash());
    }

    #[test]
    fn distinct_ops_deduplicates() {
        let mut tb = TraceBuilder::new();
        for i in 0..5 {
            tb.push(Time::from_nanos(i), 0, op(), 1);
        }
        assert_eq!(tb.finish().distinct_ops().len(), 1);
    }
}
