use std::collections::BTreeMap;
use std::fmt;

use sherlock_trace::{OpId, OpRef};

/// The synchronization role an operation plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Blocks/orders the consuming side (happens-after).
    Acquire,
    /// Publishes/orders the producing side (happens-before).
    Release,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Acquire => write!(f, "acquire"),
            Role::Release => write!(f, "release"),
        }
    }
}

/// One inferred synchronization operation.
#[derive(Clone, Debug, PartialEq)]
pub struct InferredOp {
    /// The static operation.
    pub op: OpId,
    /// Its inferred role.
    pub role: Role,
    /// The probability the Solver assigned (≥ the inference threshold).
    pub probability: f64,
}

/// The Solver's output: every operation's acquire/release probability and the
/// set crossing the inference threshold (paper §4.2, "Solving & Result
/// interpretation").
#[derive(Clone, Debug, Default)]
pub struct InferenceReport {
    /// Operations inferred as synchronizations, sorted by resolved operation
    /// name (process-stable, unlike raw `OpId` intern order) with acquire
    /// before release per op.
    pub inferred: Vec<InferredOp>,
    /// Raw probabilities per (op, role), including sub-threshold ones.
    pub probabilities: BTreeMap<(OpId, Role), f64>,
    /// Optimal objective value of the LP.
    pub objective: f64,
    /// Number of LP variables (candidate op-role pairs).
    pub num_variables: usize,
    /// Number of distinct (deduplicated) windows encoded.
    pub num_windows: usize,
    /// Static pairs discarded as data races.
    pub racy_pairs: usize,
    /// Telemetry accumulated by the session that produced this report: phase
    /// spans, counters, and histograms, as a delta since the session started
    /// (see [`sherlock_obs::Snapshot`]).
    pub telemetry: sherlock_obs::Snapshot,
}

impl InferenceReport {
    /// Inferred acquires.
    pub fn acquires(&self) -> impl Iterator<Item = OpId> + '_ {
        self.inferred
            .iter()
            .filter(|i| i.role == Role::Acquire)
            .map(|i| i.op)
    }

    /// Inferred releases.
    pub fn releases(&self) -> impl Iterator<Item = OpId> + '_ {
        self.inferred
            .iter()
            .filter(|i| i.role == Role::Release)
            .map(|i| i.op)
    }

    /// Whether `op` was inferred in the given role.
    pub fn contains(&self, op: OpId, role: Role) -> bool {
        self.inferred.iter().any(|i| i.op == op && i.role == role)
    }

    /// Whether `op` was inferred in either role.
    pub fn contains_op(&self, op: OpId) -> bool {
        self.inferred.iter().any(|i| i.op == op)
    }

    /// The probability assigned to `(op, role)`; zero if never a candidate.
    pub fn probability(&self, op: OpId, role: Role) -> f64 {
        self.probabilities.get(&(op, role)).copied().unwrap_or(0.0)
    }

    /// Renders the report in the artifact's output format
    /// ("Releasing sites: …" / "Acquire sites: …", paper §A.6).
    pub fn render(&self) -> String {
        let mut out = String::from("Releasing sites:\n");
        for op in self.releases() {
            out.push_str(&format!("  {}\n", op.resolve()));
        }
        out.push_str("Acquire sites:\n");
        for op in self.acquires() {
            out.push_str(&format!("  {}\n", op.resolve()));
        }
        out
    }

    /// Classifies an inferred op the way §5.3 groups Table 8/9 rows:
    /// `"system-API"`, `"variable"`, or `"application-method"`.
    pub fn classify(op: OpId) -> &'static str {
        match op.resolve() {
            OpRef::FieldRead { .. } | OpRef::FieldWrite { .. } => "variable",
            OpRef::MethodBegin { kind, .. } | OpRef::MethodEnd { kind, .. } => {
                if kind == sherlock_trace::MethodKind::Lib {
                    "system-API"
                } else {
                    "application-method"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(ops: Vec<(OpId, Role, f64)>) -> InferenceReport {
        let mut r = InferenceReport::default();
        for (op, role, p) in ops {
            r.probabilities.insert((op, role), p);
            if p >= 0.9 {
                r.inferred.push(InferredOp {
                    op,
                    role,
                    probability: p,
                });
            }
        }
        r
    }

    #[test]
    fn accessors_filter_by_role() {
        let a = OpRef::field_read("R", "f").intern();
        let b = OpRef::field_write("R", "f").intern();
        let r = report_with(vec![(a, Role::Acquire, 1.0), (b, Role::Release, 1.0)]);
        assert_eq!(r.acquires().collect::<Vec<_>>(), vec![a]);
        assert_eq!(r.releases().collect::<Vec<_>>(), vec![b]);
        assert!(r.contains(a, Role::Acquire));
        assert!(!r.contains(a, Role::Release));
        assert!(r.contains_op(b));
    }

    #[test]
    fn probability_defaults_to_zero() {
        let a = OpRef::field_read("R", "g").intern();
        let r = InferenceReport::default();
        assert_eq!(r.probability(a, Role::Acquire), 0.0);
    }

    #[test]
    fn render_matches_artifact_format() {
        let a = OpRef::lib_begin("Monitor", "Enter").intern();
        let b = OpRef::lib_end("Monitor", "Exit").intern();
        let r = report_with(vec![(a, Role::Acquire, 1.0), (b, Role::Release, 1.0)]);
        let s = r.render();
        assert!(s.starts_with("Releasing sites:\n"));
        assert!(s.contains("Monitor::Exit-End"));
        assert!(s.contains("Acquire sites:\n"));
        assert!(s.contains("Monitor::Enter-Begin"));
    }

    #[test]
    fn classification_buckets() {
        assert_eq!(
            InferenceReport::classify(OpRef::field_read("C", "f").intern()),
            "variable"
        );
        assert_eq!(
            InferenceReport::classify(OpRef::lib_begin("Monitor", "Enter").intern()),
            "system-API"
        );
        assert_eq!(
            InferenceReport::classify(OpRef::app_begin("C", "m").intern()),
            "application-method"
        );
    }
}
