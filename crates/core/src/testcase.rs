use std::fmt;
use std::sync::Arc;

use sherlock_sim::{RunReport, Sim, SimConfig};

/// A named unit test that can be executed repeatedly under the simulator.
///
/// SherLock "runs the unit tests a small number of times with feedback-based
/// delay injection" (paper abstract), so the body must be re-runnable — a
/// shared `Fn` rather than a `FnOnce`.
///
/// ```
/// use sherlock_core::TestCase;
/// use sherlock_sim::SimConfig;
///
/// let t = TestCase::new("trivial", || {});
/// let report = t.run(SimConfig::with_seed(1));
/// assert!(report.is_clean());
/// ```
#[derive(Clone)]
pub struct TestCase {
    name: String,
    body: Arc<dyn Fn() + Send + Sync + 'static>,
}

impl TestCase {
    /// Wraps a test body.
    pub fn new(name: impl Into<String>, body: impl Fn() + Send + Sync + 'static) -> Self {
        TestCase {
            name: name.into(),
            body: Arc::new(body),
        }
    }

    /// The test's name (stable across runs; used for seed derivation).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executes the test once under the given simulator configuration.
    pub fn run(&self, config: SimConfig) -> RunReport {
        let body = Arc::clone(&self.body);
        Sim::new(config).run(move || body())
    }

    /// A shared handle to the test body, for harnesses that drive their own
    /// simulators (the schedule Explorer fans one body across many kernels).
    pub fn body(&self) -> Arc<dyn Fn() + Send + Sync + 'static> {
        Arc::clone(&self.body)
    }
}

impl fmt::Debug for TestCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestCase")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn test_case_is_rerunnable() {
        let count = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&count);
        let t = TestCase::new("counter", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        t.run(SimConfig::with_seed(1));
        t.run(SimConfig::with_seed(2));
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert_eq!(t.name(), "counter");
    }
}
