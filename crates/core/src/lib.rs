//! SherLock-rs: unsupervised synchronization-operation inference.
//!
//! A Rust reproduction of *SherLock: Unsupervised Synchronization-Operation
//! Inference* (Li, Chen, Lu, Musuvathi, Nath — ASPLOS 2021). Given an
//! application's unit tests — run under the deterministic simulator in
//! [`sherlock_sim`] — SherLock infers, with **zero annotations**, which
//! operations act as acquire or release synchronizations:
//!
//! 1. The **Observer** traces heap accesses and method entry/exit events and
//!    extracts acquire/release windows around temporally close conflicting
//!    accesses.
//! 2. The **Solver** ([`solver`]) encodes synchronization properties as hard
//!    linear constraints and hypotheses (Mostly-Protected,
//!    Synchronizations-are-Rare, Acquisition-Time-Varies, Mostly-Paired) as
//!    soft objective terms, then reads each operation's synchronization
//!    probability off the LP optimum.
//! 3. The **Perturber** ([`perturber`]) injects delays before inferred
//!    releases; propagation (or its failure) shrinks windows and excludes
//!    disproven candidates in later rounds.
//!
//! The [`SherLock`] driver runs the three components for a configurable
//! number of rounds (3 in the paper) and yields an [`InferenceReport`].
//!
//! # Example
//!
//! ```
//! use sherlock_core::{SherLock, SherLockConfig, TestCase, Role};
//! use sherlock_sim::prims::{Monitor, TracedVar, SimThread};
//! use sherlock_trace::OpRef;
//!
//! let tests = vec![TestCase::new("locked_counters", || {
//!     let m = Monitor::new();
//!     // One lock protecting several fields: the monitor is the shared
//!     // cover across every window, which is what makes it win over
//!     // per-field explanations under Synchronizations-are-Rare.
//!     let vs: Vec<_> = (0..3)
//!         .map(|i| TracedVar::new("Counter", format!("value{i}"), 0u32))
//!         .collect();
//!     let (m2, vs2) = (m.clone(), vs.clone());
//!     let t = SimThread::start("Counter", "Increment", move || {
//!         for _ in 0..3 {
//!             m2.with_lock(|| {
//!                 for v in &vs2 { v.update(|x| x + 1); }
//!             });
//!         }
//!     });
//!     for _ in 0..3 {
//!         m.with_lock(|| {
//!             for v in &vs { v.update(|x| x + 1); }
//!         });
//!     }
//!     t.join();
//! })];
//! let mut sl = SherLock::new(SherLockConfig::default());
//! let report = sl.run_rounds(&tests, 3).unwrap();
//! // The monitor surfaces among the inferred synchronizations.
//! assert!(report.inferred.iter().any(|i| {
//!     i.op.resolve().class() == "System.Threading.Monitor"
//! }));
//! ```

mod config;
mod driver;
mod observations;
mod report;
mod session;
mod testcase;

pub mod perturber;
pub mod solver;

pub use config::{Feedback, Hypotheses, SherLockConfig};
pub use driver::{infer, infer_seeded, SherLock};
pub use observations::{Observations, WindowAgg, WindowKey};
pub use report::{InferenceReport, InferredOp, Role};
pub use session::{RoundStats, Session, DEFAULT_MEMO_CAPACITY};
pub use testcase::TestCase;
