//! The Perturber: feedback-based delay injection (paper §3, §4.3).
//!
//! After each round the Perturber asks the Observer to inject a 100 ms delay
//! right before every dynamic instance of every currently inferred release.
//! In the next run, each window containing a delayed release candidate `r`
//! yields decisive evidence:
//!
//! * the delay **propagated** (Fig. 2c): `b` executed only after the delayed
//!   `r`, and `b`'s thread was quiet throughout the delay — trust `r`, shrink
//!   the acquire window to the operations between `r` and `b`;
//! * the delay **failed to propagate** (Fig. 2b): `b` executed while `r` was
//!   still delayed — `r` is *not* the release protecting this pair; exclude
//!   it and shrink the release window to the operations before the delay.

use std::collections::BTreeMap;

use sherlock_sim::DelayPlan;
use sherlock_trace::windows::{Candidate, Window};
use sherlock_trace::{OpId, Time, Trace};

use crate::report::InferenceReport;

/// Builds the next run's delay plan: a delay before every inferred release.
pub fn delay_plan(report: &InferenceReport, delay: Time) -> DelayPlan {
    DelayPlan::before_all(report.releases(), delay)
}

/// Like [`delay_plan`], delaying each dynamic instance independently with
/// the given probability (the paper's footnote-1 variant).
pub fn delay_plan_with_probability(
    report: &InferenceReport,
    delay: Time,
    probability: f64,
) -> DelayPlan {
    DelayPlan::before_all_with_probability(report.releases(), delay, probability)
}

/// Conclusions drawn from one delayed run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Refinement {
    /// `(static pair, candidate)` pairs proven not to be the protecting
    /// release (delay failed to propagate).
    pub exclusions: Vec<((OpId, OpId), OpId)>,
    /// Number of windows whose delay propagated (confirmations).
    pub confirmations: usize,
}

/// Applies delay-propagation analysis to the windows of one run, shrinking
/// them in place and returning cross-run conclusions.
pub fn refine_windows(trace: &Trace, windows: &mut [Window]) -> Refinement {
    let mut refinement = Refinement::default();
    if trace.delays().is_empty() {
        return refinement;
    }

    for w in windows.iter_mut() {
        // The latest delay injected on the releasing thread inside this
        // window's span.
        let rec = trace
            .delays()
            .iter()
            .filter(|d| d.thread == w.a_thread && d.start >= w.a_time && d.start <= w.b_time)
            .max_by_key(|d| d.start);
        let Some(rec) = rec else { continue };

        // The acquiring thread may still have been running toward its
        // blocking point early in the delay; only activity in the delay's
        // tail disproves propagation.
        let mid = Time::from_nanos((rec.start.as_nanos() + rec.end.as_nanos()) / 2);
        let quiet = !trace
            .events()
            .iter()
            .any(|e| e.thread == w.b_thread && e.time > mid && e.time < rec.end);

        if w.b_time > rec.end && quiet {
            // Propagated: the release is at (or before) r; the acquire is
            // between r and b.
            w.release = candidates_in(trace, w.a_thread.0, w.a_time, rec.end);
            w.acquire = candidates_in(trace, w.b_thread.0, rec.end, w.b_time);
            refinement.confirmations += 1;
        } else if w.b_time <= rec.end {
            // Not propagated: b ran during the delay, so r cannot be the
            // release coordinating this pair; the real one is before the
            // delay started.
            refinement.exclusions.push((w.pair(), rec.op));
            w.release = candidates_in(
                trace,
                w.a_thread.0,
                w.a_time,
                rec.start.saturating_sub(Time::from_nanos(1)),
            );
        }
    }
    refinement
}

/// Deduplicated candidates from `thread` with timestamps in `[from, to]`.
fn candidates_in(trace: &Trace, thread: u32, from: Time, to: Time) -> Vec<Candidate> {
    let events = trace.events();
    let lo = events.partition_point(|e| e.time < from);
    let hi = events.partition_point(|e| e.time <= to);
    let mut counts: BTreeMap<OpId, u32> = BTreeMap::new();
    for e in &events[lo..hi] {
        if e.thread.0 == thread {
            *counts.entry(e.op).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .map(|(op, count)| Candidate { op, count })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{InferredOp, Role};
    use sherlock_trace::{OpRef, TraceBuilder};

    fn report_with_release(op: OpId) -> InferenceReport {
        InferenceReport {
            inferred: vec![InferredOp {
                op,
                role: Role::Release,
                probability: 1.0,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn delay_plan_covers_releases_only() {
        let rel = OpRef::app_end("Pert", "Publish").intern();
        let plan = delay_plan(&report_with_release(rel), Time::from_millis(100));
        assert_eq!(plan.delay_for(rel), Some(Time::from_millis(100)));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn no_delays_no_refinement() {
        let mut tb = TraceBuilder::new();
        let w = OpRef::field_write("Pert", "x").intern();
        tb.push(Time::from_micros(1), 0, w, 1);
        let trace = tb.finish();
        let mut windows = vec![];
        assert_eq!(refine_windows(&trace, &mut windows), Refinement::default());
    }

    /// Layout: a=write(x)@1ms, decoy-End@2ms (delayed 100ms, executes@102ms),
    /// b=read(x)@5ms — b fires during the delay ⇒ not propagated ⇒ exclusion.
    #[test]
    fn failed_propagation_excludes_candidate_and_shrinks_release_window() {
        let a = OpRef::field_write("Pert2", "x").intern();
        let b = OpRef::field_read("Pert2", "x").intern();
        let decoy = OpRef::app_end("Pert2", "Decoy").intern();
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, a, 1);
        tb.push_delay(0, decoy, Time::from_millis(2), Time::from_millis(102));
        tb.push(Time::from_millis(5), 1, b, 1);
        tb.push(Time::from_millis(102), 0, decoy, 1);
        let trace = tb.finish();
        let mut windows = sherlock_trace::windows::extract(
            &trace,
            &sherlock_trace::windows::WindowConfig::default(),
        );
        assert_eq!(windows.len(), 1);
        let r = refine_windows(&trace, &mut windows);
        assert_eq!(r.exclusions, vec![((a, b), decoy)]);
        assert_eq!(r.confirmations, 0);
        // Release window shrank to [a_time, delay start): only the write.
        assert_eq!(windows[0].release.len(), 1);
        assert_eq!(windows[0].release[0].op, a);
    }

    /// Layout: a=write(x)@1ms, real-End delayed to 102ms, b=read(x)@105ms
    /// with a quiet b-thread during the delay ⇒ propagated ⇒ confirmation,
    /// and the acquire window shrinks to ops after the delayed release.
    #[test]
    fn propagation_confirms_and_shrinks_acquire_window() {
        let a = OpRef::field_write("Pert3", "x").intern();
        let b = OpRef::field_read("Pert3", "x").intern();
        let real = OpRef::app_end("Pert3", "Real").intern();
        let early_noise = OpRef::app_begin("Pert3", "Early").intern();
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, a, 1);
        tb.push(Time::from_millis(1), 1, early_noise, 2);
        tb.push_delay(0, real, Time::from_millis(2), Time::from_millis(102));
        tb.push(Time::from_millis(102), 0, real, 1);
        tb.push(Time::from_millis(105), 1, b, 1);
        let trace = tb.finish();
        let mut windows = sherlock_trace::windows::extract(
            &trace,
            &sherlock_trace::windows::WindowConfig::default(),
        );
        assert_eq!(windows.len(), 1);
        let r = refine_windows(&trace, &mut windows);
        assert_eq!(r.confirmations, 1);
        assert!(r.exclusions.is_empty());
        // Acquire window shrank past the delay: the early noise is gone.
        assert!(windows[0].acquire.iter().all(|c| c.op != early_noise));
        assert!(windows[0].acquire.iter().any(|c| c.op == b));
        // Release window still ends at the delayed release.
        assert!(windows[0].release.iter().any(|c| c.op == real));
    }

    /// A busy acquiring thread during the delay defeats the quietness check:
    /// no conclusion should be drawn.
    #[test]
    fn busy_acquire_thread_prevents_propagation_claim() {
        let a = OpRef::field_write("Pert4", "x").intern();
        let b = OpRef::field_read("Pert4", "x").intern();
        let real = OpRef::app_end("Pert4", "Real").intern();
        let busy = OpRef::app_begin("Pert4", "Busy").intern();
        let mut tb = TraceBuilder::new();
        tb.push(Time::from_millis(1), 0, a, 1);
        tb.push_delay(0, real, Time::from_millis(2), Time::from_millis(102));
        tb.push(Time::from_millis(80), 1, busy, 2); // active in the delay tail
        tb.push(Time::from_millis(102), 0, real, 1);
        tb.push(Time::from_millis(105), 1, b, 1);
        let trace = tb.finish();
        let mut windows = sherlock_trace::windows::extract(
            &trace,
            &sherlock_trace::windows::WindowConfig::default(),
        );
        let before = windows.clone();
        let r = refine_windows(&trace, &mut windows);
        assert_eq!(r.confirmations, 0);
        assert!(r.exclusions.is_empty());
        assert_eq!(windows[0].acquire, before[0].acquire);
    }
}
