use std::collections::{BTreeMap, BTreeSet, HashMap};

use sherlock_trace::durations::DurationMap;
use sherlock_trace::windows::Window;
use sherlock_trace::{OpId, Time};

/// Identity of a deduplicated window shape: the static location pair plus the
/// exact candidate multisets. Many dynamic windows (e.g. from a loop) share
/// one shape; the Solver weighs the shape by its observation count instead of
/// encoding thousands of identical hinge terms.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowKey {
    /// Ordered static location pair `(a, b)`.
    pub pair: (OpId, OpId),
    /// Release-side candidates with occurrence counts, sorted by op.
    pub release: Vec<(OpId, u32)>,
    /// Acquire-side candidates with occurrence counts, sorted by op.
    pub acquire: Vec<(OpId, u32)>,
}

/// Aggregate for one window shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowAgg {
    /// Number of dynamic windows with this shape observed so far.
    pub weight: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct OccStat {
    total: u64,
    windows: u64,
}

/// Everything SherLock has observed so far, accumulated across runs
/// (paper §4.3): window shapes, candidate occurrence statistics, method
/// durations, witnessed data races, and Perturber-derived exclusions.
#[derive(Clone, Debug, Default)]
pub struct Observations {
    windows: BTreeMap<WindowKey, WindowAgg>,
    racy_pairs: BTreeSet<(OpId, OpId)>,
    exclusions: BTreeSet<((OpId, OpId), OpId)>,
    occ: HashMap<OpId, OccStat>,
    durations: HashMap<OpId, Vec<Time>>,
    runs: usize,
}

impl Observations {
    /// Empty state (before the first run).
    pub fn new() -> Self {
        Observations::default()
    }

    /// Ingests one extracted window.
    pub fn add_window(&mut self, w: &Window) {
        let key = WindowKey {
            pair: w.pair(),
            release: w.release.iter().map(|c| (c.op, c.count)).collect(),
            acquire: w.acquire.iter().map(|c| (c.op, c.count)).collect(),
        };
        for (op, count) in key.release.iter().chain(&key.acquire) {
            let s = self.occ.entry(*op).or_default();
            s.total += u64::from(*count);
            s.windows += 1;
        }
        self.windows.entry(key).or_default().weight += 1;
    }

    /// Records that the pair's windows witness a data race; the Solver drops
    /// their Mostly-Protected terms (paper §4.3).
    pub fn mark_racy(&mut self, pair: (OpId, OpId)) {
        self.racy_pairs.insert(pair);
    }

    /// Records a Perturber conclusion: `op` is *not* the release protecting
    /// `pair` (its injected delay failed to propagate, Fig. 2b).
    pub fn exclude_release(&mut self, pair: (OpId, OpId), op: OpId) {
        self.exclusions.insert((pair, op));
    }

    /// Merges one run's method durations.
    pub fn add_durations(&mut self, durations: DurationMap) {
        for (op, mut samples) in durations {
            self.durations.entry(op).or_default().append(&mut samples);
        }
    }

    /// Marks the end of one observed run.
    pub fn finish_run(&mut self) {
        self.runs += 1;
    }

    /// Window shapes and their weights.
    pub fn windows(&self) -> &BTreeMap<WindowKey, WindowAgg> {
        &self.windows
    }

    /// Pairs witnessed racing.
    pub fn racy_pairs(&self) -> &BTreeSet<(OpId, OpId)> {
        &self.racy_pairs
    }

    /// Whether `op` has been excluded as the release for `pair`.
    pub fn is_excluded(&self, pair: (OpId, OpId), op: OpId) -> bool {
        self.exclusions.contains(&(pair, op))
    }

    /// Number of Perturber exclusions recorded.
    pub fn num_exclusions(&self) -> usize {
        self.exclusions.len()
    }

    /// Average number of occurrences of `op` per window it appears in
    /// (the statistic behind the rarity penalty, Eq. 4).
    pub fn avg_occurrence(&self, op: OpId) -> f64 {
        match self.occ.get(&op) {
            Some(s) if s.windows > 0 => s.total as f64 / s.windows as f64,
            _ => 0.0,
        }
    }

    /// Duration samples per method-begin op.
    pub fn durations(&self) -> &HashMap<OpId, Vec<Time>> {
        &self.durations
    }

    /// Runs observed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_trace::windows::{Candidate, Window};
    use sherlock_trace::{ObjectId, OpRef, ThreadId};

    fn mk_window(a: OpId, b: OpId, rel: &[(OpId, u32)], acq: &[(OpId, u32)]) -> Window {
        Window {
            a_op: a,
            b_op: b,
            a_thread: ThreadId(0),
            b_thread: ThreadId(1),
            a_time: Time::ZERO,
            b_time: Time::from_micros(10),
            object: ObjectId(1),
            release: rel
                .iter()
                .map(|&(op, count)| Candidate { op, count })
                .collect(),
            acquire: acq
                .iter()
                .map(|&(op, count)| Candidate { op, count })
                .collect(),
            release_capable: true,
            acquire_capable: true,
        }
    }

    #[test]
    fn identical_windows_aggregate_by_weight() {
        let a = OpRef::field_write("Obs", "x").intern();
        let b = OpRef::field_read("Obs", "x").intern();
        let mut obs = Observations::new();
        for _ in 0..5 {
            obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 3)]));
        }
        assert_eq!(obs.windows().len(), 1);
        assert_eq!(obs.windows().values().next().unwrap().weight, 5);
        assert_eq!(obs.avg_occurrence(b), 3.0);
        assert_eq!(obs.avg_occurrence(a), 1.0);
    }

    #[test]
    fn different_shapes_stay_separate() {
        let a = OpRef::field_write("Obs", "y").intern();
        let b = OpRef::field_read("Obs", "y").intern();
        let c = OpRef::app_end("Obs", "m").intern();
        let mut obs = Observations::new();
        obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 1)]));
        obs.add_window(&mk_window(a, b, &[(a, 1), (c, 1)], &[(b, 1)]));
        assert_eq!(obs.windows().len(), 2);
    }

    #[test]
    fn avg_occurrence_mixes_windows() {
        let a = OpRef::field_write("Obs", "z").intern();
        let b = OpRef::field_read("Obs", "z").intern();
        let mut obs = Observations::new();
        obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 1)]));
        obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 5)]));
        assert_eq!(obs.avg_occurrence(b), 3.0);
        assert_eq!(
            obs.avg_occurrence(OpRef::field_read("Obs", "none").intern()),
            0.0
        );
    }

    #[test]
    fn racy_and_exclusion_bookkeeping() {
        let a = OpRef::field_write("Obs", "w").intern();
        let b = OpRef::field_read("Obs", "w").intern();
        let r = OpRef::app_end("Obs", "rel").intern();
        let mut obs = Observations::new();
        obs.mark_racy((a, b));
        obs.exclude_release((a, b), r);
        assert!(obs.racy_pairs().contains(&(a, b)));
        assert!(obs.is_excluded((a, b), r));
        assert!(!obs.is_excluded((b, a), r));
        assert_eq!(obs.num_exclusions(), 1);
    }

    #[test]
    fn durations_accumulate_across_runs() {
        let m = OpRef::app_begin("Obs", "m").intern();
        let mut obs = Observations::new();
        let mut d1 = DurationMap::new();
        d1.insert(m, vec![Time::from_micros(1)]);
        obs.add_durations(d1);
        let mut d2 = DurationMap::new();
        d2.insert(m, vec![Time::from_micros(9)]);
        obs.add_durations(d2);
        obs.finish_run();
        obs.finish_run();
        assert_eq!(obs.durations()[&m].len(), 2);
        assert_eq!(obs.runs(), 2);
    }
}
