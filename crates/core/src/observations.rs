use std::collections::{BTreeMap, BTreeSet, HashMap};

use sherlock_obs::json::Json;
use sherlock_trace::durations::DurationMap;
use sherlock_trace::windows::Window;
use sherlock_trace::{OpId, Time};

/// Identity of a deduplicated window shape: the static location pair plus the
/// exact candidate multisets. Many dynamic windows (e.g. from a loop) share
/// one shape; the Solver weighs the shape by its observation count instead of
/// encoding thousands of identical hinge terms.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowKey {
    /// Ordered static location pair `(a, b)`.
    pub pair: (OpId, OpId),
    /// Release-side candidates with occurrence counts, sorted by op.
    pub release: Vec<(OpId, u32)>,
    /// Acquire-side candidates with occurrence counts, sorted by op.
    pub acquire: Vec<(OpId, u32)>,
}

/// Aggregate for one window shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowAgg {
    /// Number of dynamic windows with this shape observed so far.
    pub weight: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct OccStat {
    total: u64,
    windows: u64,
}

/// Everything SherLock has observed so far, accumulated across runs
/// (paper §4.3): window shapes, candidate occurrence statistics, method
/// durations, witnessed data races, and Perturber-derived exclusions.
#[derive(Clone, Debug, Default)]
pub struct Observations {
    windows: BTreeMap<WindowKey, WindowAgg>,
    racy_pairs: BTreeSet<(OpId, OpId)>,
    exclusions: BTreeSet<((OpId, OpId), OpId)>,
    occ: HashMap<OpId, OccStat>,
    durations: HashMap<OpId, Vec<Time>>,
    runs: usize,
}

impl Observations {
    /// Empty state (before the first run).
    pub fn new() -> Self {
        Observations::default()
    }

    /// Ingests one extracted window.
    pub fn add_window(&mut self, w: &Window) {
        let key = WindowKey {
            pair: w.pair(),
            release: w.release.iter().map(|c| (c.op, c.count)).collect(),
            acquire: w.acquire.iter().map(|c| (c.op, c.count)).collect(),
        };
        for (op, count) in key.release.iter().chain(&key.acquire) {
            let s = self.occ.entry(*op).or_default();
            s.total += u64::from(*count);
            s.windows += 1;
        }
        self.windows.entry(key).or_default().weight += 1;
    }

    /// Records that the pair's windows witness a data race; the Solver drops
    /// their Mostly-Protected terms (paper §4.3).
    pub fn mark_racy(&mut self, pair: (OpId, OpId)) {
        self.racy_pairs.insert(pair);
    }

    /// Records a Perturber conclusion: `op` is *not* the release protecting
    /// `pair` (its injected delay failed to propagate, Fig. 2b).
    pub fn exclude_release(&mut self, pair: (OpId, OpId), op: OpId) {
        self.exclusions.insert((pair, op));
    }

    /// Merges one run's method durations.
    pub fn add_durations(&mut self, durations: DurationMap) {
        for (op, mut samples) in durations {
            self.durations.entry(op).or_default().append(&mut samples);
        }
    }

    /// Marks the end of one observed run.
    pub fn finish_run(&mut self) {
        self.runs += 1;
    }

    /// Window shapes and their weights.
    pub fn windows(&self) -> &BTreeMap<WindowKey, WindowAgg> {
        &self.windows
    }

    /// Pairs witnessed racing.
    pub fn racy_pairs(&self) -> &BTreeSet<(OpId, OpId)> {
        &self.racy_pairs
    }

    /// Whether `op` has been excluded as the release for `pair`.
    pub fn is_excluded(&self, pair: (OpId, OpId), op: OpId) -> bool {
        self.exclusions.contains(&(pair, op))
    }

    /// Number of Perturber exclusions recorded.
    pub fn num_exclusions(&self) -> usize {
        self.exclusions.len()
    }

    /// Average number of occurrences of `op` per window it appears in
    /// (the statistic behind the rarity penalty, Eq. 4).
    pub fn avg_occurrence(&self, op: OpId) -> f64 {
        match self.occ.get(&op) {
            Some(s) if s.windows > 0 => s.total as f64 / s.windows as f64,
            _ => 0.0,
        }
    }

    /// Duration samples per method-begin op.
    pub fn durations(&self) -> &HashMap<OpId, Vec<Time>> {
        &self.durations
    }

    /// Runs observed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Serializes the accumulated state as a [`Json`] value tree for
    /// `sherlock-store` snapshots. Ops serialize as resolved [`OpRef`]s
    /// (raw `OpId`s are intern-order accidents and do not survive a process
    /// restart); map-shaped state is emitted in `OpId` order so the bytes are
    /// deterministic within one process.
    pub fn to_value(&self) -> Json {
        use sherlock_trace::json::op_to_value;
        let op = op_to_value;
        let pair = |p: (OpId, OpId)| Json::Arr(vec![op(p.0), op(p.1)]);
        let cands = |c: &[(OpId, u32)]| {
            Json::Arr(
                c.iter()
                    .map(|&(o, n)| Json::Arr(vec![op(o), Json::from(u64::from(n))]))
                    .collect(),
            )
        };
        let windows: Vec<Json> = self
            .windows
            .iter()
            .map(|(k, agg)| {
                Json::Obj(vec![
                    ("pair".to_string(), pair(k.pair)),
                    ("release".to_string(), cands(&k.release)),
                    ("acquire".to_string(), cands(&k.acquire)),
                    ("weight".to_string(), Json::from(agg.weight)),
                ])
            })
            .collect();
        let racy: Vec<Json> = self.racy_pairs.iter().map(|&p| pair(p)).collect();
        let exclusions: Vec<Json> = self
            .exclusions
            .iter()
            .map(|&((a, b), o)| Json::Arr(vec![op(a), op(b), op(o)]))
            .collect();
        let mut occ: Vec<(&OpId, &OccStat)> = self.occ.iter().collect();
        occ.sort_by_key(|(o, _)| **o);
        let occ: Vec<Json> = occ
            .into_iter()
            .map(|(&o, s)| Json::Arr(vec![op(o), Json::from(s.total), Json::from(s.windows)]))
            .collect();
        let mut durations: Vec<(&OpId, &Vec<Time>)> = self.durations.iter().collect();
        durations.sort_by_key(|(o, _)| **o);
        let durations: Vec<Json> = durations
            .into_iter()
            .map(|(&o, samples)| {
                let s: Vec<Json> = samples.iter().map(|t| Json::from(t.as_nanos())).collect();
                Json::Arr(vec![op(o), Json::Arr(s)])
            })
            .collect();
        Json::Obj(vec![
            ("windows".to_string(), Json::Arr(windows)),
            ("racy".to_string(), Json::Arr(racy)),
            ("exclusions".to_string(), Json::Arr(exclusions)),
            ("occ".to_string(), Json::Arr(occ)),
            ("durations".to_string(), Json::Arr(durations)),
            ("runs".to_string(), Json::from(self.runs as u64)),
        ])
    }

    /// Rebuilds observations from a value produced by [`Observations::to_value`],
    /// re-interning every op in this process's registry. `WindowKey` candidate
    /// vecs are re-sorted under the *new* `OpId` order so keys loaded from a
    /// snapshot aggregate with keys produced by replayed extraction.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first schema violation.
    pub fn from_value(v: &Json) -> Result<Self, String> {
        use sherlock_trace::json::op_from_value;
        let arr = |name: &str| {
            v.get(name)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("observations: missing {name:?} array"))
        };
        let op = |v: &Json, ctx: &str| op_from_value(v).map_err(|e| format!("{ctx}: {e}"));
        let pair = |v: &Json, ctx: &str| -> Result<(OpId, OpId), String> {
            match v.as_array() {
                Some([a, b]) => Ok((op(a, ctx)?, op(b, ctx)?)),
                _ => Err(format!("{ctx}: pair must be a 2-array")),
            }
        };
        let cands = |v: &Json, ctx: &str| -> Result<Vec<(OpId, u32)>, String> {
            let items = v
                .as_array()
                .ok_or_else(|| format!("{ctx}: candidates must be an array"))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let Some([o, n]) = item.as_array() else {
                    return Err(format!("{ctx}: candidate must be [op, count]"));
                };
                let n = n
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("{ctx}: bad candidate count"))?;
                out.push((op(o, ctx)?, n));
            }
            out.sort_unstable();
            Ok(out)
        };

        let mut obs = Observations::new();
        for (i, w) in arr("windows")?.iter().enumerate() {
            let ctx = format!("window {i}");
            let key = WindowKey {
                pair: pair(
                    w.get("pair").ok_or_else(|| format!("{ctx}: no pair"))?,
                    &ctx,
                )?,
                release: cands(
                    w.get("release")
                        .ok_or_else(|| format!("{ctx}: no release"))?,
                    &ctx,
                )?,
                acquire: cands(
                    w.get("acquire")
                        .ok_or_else(|| format!("{ctx}: no acquire"))?,
                    &ctx,
                )?,
            };
            let weight = w
                .get("weight")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{ctx}: missing weight"))?;
            obs.windows.entry(key).or_default().weight += weight;
        }
        for (i, p) in arr("racy")?.iter().enumerate() {
            obs.racy_pairs.insert(pair(p, &format!("racy {i}"))?);
        }
        for (i, e) in arr("exclusions")?.iter().enumerate() {
            let ctx = format!("exclusion {i}");
            let Some([a, b, o]) = e.as_array() else {
                return Err(format!("{ctx}: must be a 3-array"));
            };
            obs.exclusions
                .insert(((op(a, &ctx)?, op(b, &ctx)?), op(o, &ctx)?));
        }
        for (i, o) in arr("occ")?.iter().enumerate() {
            let ctx = format!("occ {i}");
            let Some([id, total, windows]) = o.as_array() else {
                return Err(format!("{ctx}: must be [op, total, windows]"));
            };
            let s = OccStat {
                total: total.as_u64().ok_or_else(|| format!("{ctx}: bad total"))?,
                windows: windows
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: bad windows"))?,
            };
            obs.occ.insert(op(id, &ctx)?, s);
        }
        for (i, d) in arr("durations")?.iter().enumerate() {
            let ctx = format!("duration {i}");
            let Some([id, samples]) = d.as_array() else {
                return Err(format!("{ctx}: must be [op, samples]"));
            };
            let samples = samples
                .as_array()
                .ok_or_else(|| format!("{ctx}: samples must be an array"))?
                .iter()
                .map(|t| {
                    t.as_u64()
                        .map(Time::from_nanos)
                        .ok_or_else(|| format!("{ctx}: bad sample"))
                })
                .collect::<Result<Vec<Time>, String>>()?;
            obs.durations.insert(op(id, &ctx)?, samples);
        }
        obs.runs = usize::try_from(
            v.get("runs")
                .and_then(Json::as_u64)
                .ok_or("observations: missing runs")?,
        )
        .map_err(|_| "observations: runs out of range")?;
        Ok(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_trace::windows::{Candidate, Window};
    use sherlock_trace::{ObjectId, OpRef, ThreadId};

    fn mk_window(a: OpId, b: OpId, rel: &[(OpId, u32)], acq: &[(OpId, u32)]) -> Window {
        Window {
            a_op: a,
            b_op: b,
            a_thread: ThreadId(0),
            b_thread: ThreadId(1),
            a_time: Time::ZERO,
            b_time: Time::from_micros(10),
            object: ObjectId(1),
            release: rel
                .iter()
                .map(|&(op, count)| Candidate { op, count })
                .collect(),
            acquire: acq
                .iter()
                .map(|&(op, count)| Candidate { op, count })
                .collect(),
            release_capable: true,
            acquire_capable: true,
        }
    }

    #[test]
    fn identical_windows_aggregate_by_weight() {
        let a = OpRef::field_write("Obs", "x").intern();
        let b = OpRef::field_read("Obs", "x").intern();
        let mut obs = Observations::new();
        for _ in 0..5 {
            obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 3)]));
        }
        assert_eq!(obs.windows().len(), 1);
        assert_eq!(obs.windows().values().next().unwrap().weight, 5);
        assert_eq!(obs.avg_occurrence(b), 3.0);
        assert_eq!(obs.avg_occurrence(a), 1.0);
    }

    #[test]
    fn different_shapes_stay_separate() {
        let a = OpRef::field_write("Obs", "y").intern();
        let b = OpRef::field_read("Obs", "y").intern();
        let c = OpRef::app_end("Obs", "m").intern();
        let mut obs = Observations::new();
        obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 1)]));
        obs.add_window(&mk_window(a, b, &[(a, 1), (c, 1)], &[(b, 1)]));
        assert_eq!(obs.windows().len(), 2);
    }

    #[test]
    fn avg_occurrence_mixes_windows() {
        let a = OpRef::field_write("Obs", "z").intern();
        let b = OpRef::field_read("Obs", "z").intern();
        let mut obs = Observations::new();
        obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 1)]));
        obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 5)]));
        assert_eq!(obs.avg_occurrence(b), 3.0);
        assert_eq!(
            obs.avg_occurrence(OpRef::field_read("Obs", "none").intern()),
            0.0
        );
    }

    #[test]
    fn racy_and_exclusion_bookkeeping() {
        let a = OpRef::field_write("Obs", "w").intern();
        let b = OpRef::field_read("Obs", "w").intern();
        let r = OpRef::app_end("Obs", "rel").intern();
        let mut obs = Observations::new();
        obs.mark_racy((a, b));
        obs.exclude_release((a, b), r);
        assert!(obs.racy_pairs().contains(&(a, b)));
        assert!(obs.is_excluded((a, b), r));
        assert!(!obs.is_excluded((b, a), r));
        assert_eq!(obs.num_exclusions(), 1);
    }

    #[test]
    fn value_round_trip_preserves_everything() {
        let a = OpRef::field_write("ObsRt", "x").intern();
        let b = OpRef::field_read("ObsRt", "x").intern();
        let c = OpRef::app_end("ObsRt", "m").intern();
        let m = OpRef::app_begin("ObsRt", "m").intern();
        let mut obs = Observations::new();
        obs.add_window(&mk_window(a, b, &[(a, 1), (c, 2)], &[(b, 3)]));
        obs.add_window(&mk_window(a, b, &[(a, 1), (c, 2)], &[(b, 3)]));
        obs.add_window(&mk_window(a, b, &[(a, 1)], &[(b, 1)]));
        obs.mark_racy((a, b));
        obs.exclude_release((a, b), c);
        let mut d = DurationMap::new();
        d.insert(m, vec![Time::from_micros(3), Time::from_micros(1)]);
        obs.add_durations(d);
        obs.finish_run();
        obs.finish_run();

        let v = obs.to_value();
        let back = Observations::from_value(&v).expect("round trip");
        assert_eq!(back.windows(), obs.windows());
        assert_eq!(back.racy_pairs(), obs.racy_pairs());
        assert!(back.is_excluded((a, b), c));
        assert_eq!(back.num_exclusions(), 1);
        assert_eq!(back.avg_occurrence(c), obs.avg_occurrence(c));
        assert_eq!(back.durations()[&m], obs.durations()[&m]);
        assert_eq!(back.runs(), 2);
        // Bytes are deterministic within one process.
        assert_eq!(v.render(), back.to_value().render());
    }

    #[test]
    fn from_value_rejects_malformed() {
        assert!(Observations::from_value(&Json::Obj(vec![])).is_err());
        let v = Json::parse(r#"{"windows":[{"pair":[1,2]}],"racy":[],"exclusions":[],"occ":[],"durations":[],"runs":0}"#).unwrap();
        assert!(Observations::from_value(&v).is_err());
    }

    #[test]
    fn durations_accumulate_across_runs() {
        let m = OpRef::app_begin("Obs", "m").intern();
        let mut obs = Observations::new();
        let mut d1 = DurationMap::new();
        d1.insert(m, vec![Time::from_micros(1)]);
        obs.add_durations(d1);
        let mut d2 = DurationMap::new();
        d2.insert(m, vec![Time::from_micros(9)]);
        obs.add_durations(d2);
        obs.finish_run();
        obs.finish_run();
        assert_eq!(obs.durations()[&m].len(), 2);
        assert_eq!(obs.runs(), 2);
    }
}
