use sherlock_sim::InstrumentConfig;
use sherlock_trace::Time;

/// Toggles for SherLock's synchronization properties and hypotheses
/// (paper §2), used by the Table 5 ablation study. All enabled by default.
#[derive(Clone, Copy, Debug)]
pub struct Hypotheses {
    /// Mostly-Protected: each acquire/release window probably holds a
    /// synchronization (Eq. 2). Without it the Solver infers nothing.
    pub mostly_protected: bool,
    /// Synchronizations-are-Rare: the regularization (Eq. 3) and
    /// per-occurrence rarity penalty (Eq. 4).
    pub synchronizations_are_rare: bool,
    /// Acquisition-Time-Mostly-Varies: the duration-CV penalty (Eq. 5).
    pub acquisition_time_varies: bool,
    /// Mostly-Paired: the per-class and per-field pairing penalties
    /// (Eqs. 6–7).
    pub mostly_paired: bool,
    /// Read-Acquire & Write-Release: the hard role constraints (Eq. 1) plus
    /// the rule that one operation cannot be both an acquire and a release.
    pub read_acq_write_rel: bool,
    /// Single-Role: a library API serves one synchronization role
    /// (`begin(l)^rel + end(l)^acq ≤ 1`).
    pub single_role: bool,
}

impl Default for Hypotheses {
    fn default() -> Self {
        Hypotheses {
            mostly_protected: true,
            synchronizations_are_rare: true,
            acquisition_time_varies: true,
            mostly_paired: true,
            read_acq_write_rel: true,
            single_role: true,
        }
    }
}

impl Hypotheses {
    /// All hypotheses enabled except the named one (for Table 5 rows).
    pub fn without(name: &str) -> Self {
        let mut h = Hypotheses::default();
        match name {
            "mostly_protected" => h.mostly_protected = false,
            "synchronizations_are_rare" => h.synchronizations_are_rare = false,
            "acquisition_time_varies" => h.acquisition_time_varies = false,
            "mostly_paired" => h.mostly_paired = false,
            "read_acq_write_rel" => h.read_acq_write_rel = false,
            "single_role" => h.single_role = false,
            other => panic!("unknown hypothesis {other:?}"),
        }
        h
    }
}

/// Toggles for the Perturber and cross-run feedback (paper §4.3), used by
/// the Figure 4 study. All enabled by default.
#[derive(Clone, Copy, Debug)]
pub struct Feedback {
    /// Inject 100 ms delays before inferred releases after each round.
    pub inject_delays: bool,
    /// Accumulate constraints and observations across runs (vs. solving each
    /// run in isolation).
    pub accumulate: bool,
    /// Remove Mostly-Protected terms for window pairs observed to race.
    pub race_removal: bool,
}

impl Default for Feedback {
    fn default() -> Self {
        Feedback {
            inject_delays: true,
            accumulate: true,
            race_removal: true,
        }
    }
}

/// Full configuration of a SherLock inference session.
#[derive(Clone, Debug)]
pub struct SherLockConfig {
    /// Trade-off knob between the Mostly-Protected term and every other
    /// hypothesis in the objective (Eq. 8); 0.2 by default, swept in Table 6.
    pub lambda: f64,
    /// The physical-time window pairing conflicting accesses (§4.1); 1 s by
    /// default, swept in Table 7.
    pub near: Time,
    /// Windows allowed per static location pair (15 in the paper).
    pub cap_per_pair: usize,
    /// Delay injected before each inferred release (100 ms in the paper).
    pub delay: Time,
    /// Probability above which a variable counts as an inferred
    /// synchronization.
    pub threshold: f64,
    /// Coefficient of the rarity penalty (0.1 in Eq. 4).
    pub rare_coefficient: f64,
    /// Base seed; each (round, test) pair derives its own scheduling seed.
    pub base_seed: u64,
    /// Property/hypothesis ablation switches.
    pub hypotheses: Hypotheses,
    /// Perturber/feedback ablation switches.
    pub feedback: Feedback,
    /// Probability with which each dynamic release instance is delayed
    /// (1.0 = always, the paper's default; the paper's footnote 1 reports
    /// probabilistic injection made little difference).
    pub delay_probability: f64,
    /// Encode Single-Role as a soft penalty instead of a hard constraint —
    /// the extension §5.5 proposes to recover `UpgradeToWriterLock`-style
    /// double-role APIs.
    pub soft_single_role: bool,
    /// Warm-start each LP solve from the previous round's optimal basis
    /// (see [`sherlock_lp::Model::solve_warm`]). Inference results are
    /// identical either way; disabling forces every solve cold, which the
    /// warm-vs-cold parity suite uses as its reference.
    pub warm_start: bool,
    /// Observer instrumentation behaviour.
    pub instrument: InstrumentConfig,
}

impl Default for SherLockConfig {
    fn default() -> Self {
        SherLockConfig {
            lambda: 0.2,
            near: Time::from_secs(1),
            cap_per_pair: 15,
            delay: Time::from_millis(100),
            threshold: 0.9,
            rare_coefficient: 0.1,
            base_seed: 0x5eed,
            hypotheses: Hypotheses::default(),
            feedback: Feedback::default(),
            delay_probability: 1.0,
            soft_single_role: false,
            warm_start: true,
            instrument: InstrumentConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SherLockConfig::default();
        assert_eq!(c.lambda, 0.2);
        assert_eq!(c.near, Time::from_secs(1));
        assert_eq!(c.cap_per_pair, 15);
        assert_eq!(c.delay, Time::from_millis(100));
        assert_eq!(c.rare_coefficient, 0.1);
        assert!(c.hypotheses.mostly_protected);
        assert!(c.feedback.inject_delays);
    }

    #[test]
    fn without_flips_exactly_one() {
        let h = Hypotheses::without("mostly_paired");
        assert!(!h.mostly_paired);
        assert!(h.mostly_protected && h.synchronizations_are_rare);
        assert!(h.acquisition_time_varies && h.read_acq_write_rel && h.single_role);
    }

    #[test]
    #[should_panic(expected = "unknown hypothesis")]
    fn without_rejects_typos() {
        Hypotheses::without("mostly_protcted");
    }
}
