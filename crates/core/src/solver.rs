//! The Solver: SherLock's LP encoding of synchronization properties and
//! hypotheses (paper §4.2).
//!
//! Every candidate operation gets up to two `[0, 1]` variables — its acquire
//! probability and its release probability. Properties become hard
//! constraints; hypotheses become objective terms combined per Eq. 8:
//!
//! ```text
//! Σ_w (rel(w) + acq(w))
//!   + λ·[ Σ_c pair_c(c) + Σ_f pair_f(f) + Σ_v reg(v) + Σ_v rare(v) + Σ_m var(m) ]
//! ```
//!
//! λ trades the Mostly-Protected hypothesis against all the others.

use std::collections::{BTreeMap, BTreeSet};

use sherlock_lp::{Basis, LinExpr, LpError, Model, VarId};
use sherlock_trace::durations::DurationStats;
use sherlock_trace::{MethodKind, OpId, OpRef};

use crate::config::SherLockConfig;
use crate::observations::Observations;
use crate::report::{InferenceReport, InferredOp, Role};

/// Roles an operation may hold under the Read-Acquire & Write-Release
/// property (paper §2 / Eq. 1); with the property ablated every operation may
/// hold both.
fn allowed_roles(op: &OpRef, enforce: bool) -> (bool, bool) {
    if !enforce {
        (true, true)
    } else {
        (op.can_acquire(), op.can_release())
    }
}

/// Probabilities are snapped to a 1e-9 grid before any threshold or
/// tie-break comparison. The warm and cold solve paths may walk different
/// pivot sequences to the same optimum, differing only in float noise far
/// below the solver's 1e-7 tolerances; snapping keeps the resolve loop's
/// `max_by` choice and the report's threshold cut identical either way
/// (the warm-start parity suite relies on this).
fn snap(p: f64) -> f64 {
    (p * 1e9).round() * 1e-9
}

/// Runs the Solver over all accumulated observations (cold start).
///
/// # Errors
///
/// Propagates [`LpError`] from the simplex solver (infeasibility cannot occur
/// with this encoding — all constraints admit the all-zero point except the
/// variable bounds — but iteration limits can).
pub fn solve(obs: &Observations, cfg: &SherLockConfig) -> Result<InferenceReport, LpError> {
    solve_impl(obs, cfg, None)
}

/// Runs the Solver warm-starting every LP (the initial solve *and* each
/// resolve round) from `basis`, leaving the final round's optimal basis in
/// the handle for the next call. See [`sherlock_lp::Model::solve_warm`].
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_warm(
    obs: &Observations,
    cfg: &SherLockConfig,
    basis: &mut Basis,
) -> Result<InferenceReport, LpError> {
    solve_impl(obs, cfg, Some(basis))
}

fn solve_impl(
    obs: &Observations,
    cfg: &SherLockConfig,
    mut basis: Option<&mut Basis>,
) -> Result<InferenceReport, LpError> {
    let filter_racy = cfg.feedback.race_removal;
    let racy = obs.racy_pairs();

    // Deduplicated windows surviving race removal. `OpId`s are interned in
    // first-seen order, which differs between a live process and one that
    // rehydrated the same session from disk, so every order that feeds the
    // model below — window row order, variable creation order, expression
    // term order, tie-breaks — is derived from resolved operation *names*
    // (the same process-stable key the warm-start basis and the
    // symmetry-breaking perturbation already use). That is what makes a
    // replayed session's report byte-identical to the original's.
    let mut windows: Vec<(&crate::observations::WindowKey, f64)> = obs
        .windows()
        .iter()
        .filter(|(k, _)| !(filter_racy && racy.contains(&k.pair)))
        .map(|(k, agg)| (k, agg.weight as f64))
        .collect();

    // Candidate operations.
    let mut ops: BTreeSet<OpId> = BTreeSet::new();
    for (k, _) in &windows {
        ops.extend(k.release.iter().map(|&(op, _)| op));
        ops.extend(k.acquire.iter().map(|&(op, _)| op));
    }

    let names: BTreeMap<OpId, String> = {
        let mut pair_ops: BTreeSet<OpId> = ops.clone();
        for (k, _) in &windows {
            pair_ops.insert(k.pair.0);
            pair_ops.insert(k.pair.1);
        }
        pair_ops
            .into_iter()
            .map(|op| (op, op.resolve().to_string()))
            .collect()
    };
    let name = |op: OpId| names[&op].as_str();
    // Candidate vecs inside a `WindowKey` are sorted by `OpId`; re-key them
    // by name so the row order (and each row's term order) is intern-order
    // independent.
    let window_key = |k: &crate::observations::WindowKey| {
        let mut rel: Vec<(&str, u32)> = k.release.iter().map(|&(op, c)| (name(op), c)).collect();
        let mut acq: Vec<(&str, u32)> = k.acquire.iter().map(|&(op, c)| (name(op), c)).collect();
        rel.sort_unstable();
        acq.sort_unstable();
        (name(k.pair.0), name(k.pair.1), rel, acq)
    };
    windows.sort_by(|(a, _), (b, _)| window_key(a).cmp(&window_key(b)));

    let mut ops_sorted: Vec<OpId> = ops.iter().copied().collect();
    ops_sorted.sort_by_key(|&op| name(op));

    let mut model = Model::new();
    let mut vars: BTreeMap<(OpId, Role), VarId> = BTreeMap::new();
    // Variable creation order: by name, acquire before release per op.
    let mut vars_ordered: Vec<((OpId, Role), VarId)> = Vec::new();
    let mut resolved: BTreeMap<OpId, OpRef> = BTreeMap::new();

    for &op in &ops_sorted {
        let r = op.resolve();
        let (acq, rel) = allowed_roles(&r, cfg.hypotheses.read_acq_write_rel);
        if acq {
            let v = model.add_var(format!("{r}^acq"), 0.0, 1.0);
            vars.insert((op, Role::Acquire), v);
            vars_ordered.push(((op, Role::Acquire), v));
        }
        if rel {
            let v = model.add_var(format!("{r}^rel"), 0.0, 1.0);
            vars.insert((op, Role::Release), v);
            vars_ordered.push(((op, Role::Release), v));
        }
        // A release synchronization cannot be an acquire and vice versa.
        if acq && rel && cfg.hypotheses.read_acq_write_rel {
            let a = vars[&(op, Role::Acquire)];
            let l = vars[&(op, Role::Release)];
            model.constrain_le(LinExpr::from(a) + LinExpr::from(l), 1.0);
        }
        resolved.insert(op, r);
    }

    // Single-Role: a library API serves one synchronization type —
    // begin(l)^rel + end(l)^acq ≤ 1 (paper §4.2).
    if cfg.hypotheses.single_role {
        for &op in &ops_sorted {
            let r = &resolved[&op];
            if let OpRef::MethodBegin {
                kind: MethodKind::Lib,
                ..
            } = r
            {
                let end_op = r.method_counterpart().expect("begin has end").intern();
                if let (Some(&b_rel), Some(&e_acq)) = (
                    vars.get(&(op, Role::Release)),
                    vars.get(&(end_op, Role::Acquire)),
                ) {
                    let expr = LinExpr::from(b_rel) + LinExpr::from(e_acq);
                    if cfg.soft_single_role {
                        // The §5.5 extension: violations allowed but
                        // penalized, letting genuine double-role APIs
                        // (UpgradeToWriterLock) hold both ends.
                        model.add_hinge(expr - LinExpr::constant(1.0), cfg.lambda);
                    } else {
                        model.constrain_le(expr, 1.0);
                    }
                }
            }
        }
    }

    // Mostly-Protected: per window, hinge(1 − Σ candidate probabilities),
    // each candidate subtracted once regardless of its occurrence count
    // (Eq. 2).
    if cfg.hypotheses.mostly_protected {
        let by_name = |cands: &[(OpId, u32)]| {
            let mut c: Vec<OpId> = cands.iter().map(|&(op, _)| op).collect();
            c.sort_by_key(|&op| name(op));
            c
        };
        for (k, weight) in &windows {
            let mut rel_expr = LinExpr::constant(1.0);
            for op in by_name(&k.release) {
                if obs.is_excluded(k.pair, op) {
                    continue;
                }
                if let Some(&v) = vars.get(&(op, Role::Release)) {
                    rel_expr.add_term(v, -1.0);
                }
            }
            let mut acq_expr = LinExpr::constant(1.0);
            for op in by_name(&k.acquire) {
                if let Some(&v) = vars.get(&(op, Role::Acquire)) {
                    acq_expr.add_term(v, -1.0);
                }
            }
            model.add_hinge(rel_expr, *weight);
            model.add_hinge(acq_expr, *weight);
        }
    }

    // Synchronizations-are-Rare: regularization (Eq. 3) plus the occurrence
    // penalty (Eq. 4).
    if cfg.hypotheses.synchronizations_are_rare {
        for (&(op, _), &v) in &vars {
            let rare = cfg.rare_coefficient * obs.avg_occurrence(op);
            model.minimize(LinExpr::term(v, cfg.lambda * (1.0 + rare)));
        }
    }

    // Symmetry breaking: when several candidates explain the same windows at
    // identical cost, the LP optimum is a face rather than a vertex and the
    // solver can return fractional splits (e.g. 0.5/0.5 between a wrapper's
    // exit and the library call inside it). A deterministic, vanishingly
    // small per-variable perturbation steers the optimizer to one integral
    // corner of that face without affecting any non-degenerate comparison.
    // Derived from the variable *name* (FNV-1a mod a prime) rather than its
    // index: indices shift as candidates appear across rounds, and a
    // perturbation that moves between rounds would both re-break ties
    // differently round to round and fight the warm-start path. The 1e-8
    // granularity stays above the solvers' 1e-9 dual tolerance so every
    // solver honors it.
    for (_, &v) in vars.iter() {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in model.var_name(v).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let eps = 1e-8 * (1.0 + (h % 997) as f64);
        model.minimize(LinExpr::term(v, eps));
    }

    // Acquisition-Time-Mostly-Varies: (1 − percentile(CV)) · begin(m)^acq
    // (Eq. 5), ranking every method candidate by its duration variability.
    if cfg.hypotheses.acquisition_time_varies {
        // A single duration sample cannot evidence "does not vary", so
        // methods with fewer than two observations take a neutral percentile
        // instead of ranking at the bottom.
        let mut cvs: Vec<(OpId, Option<f64>)> = Vec::new();
        for (&op, r) in &resolved {
            if matches!(r, OpRef::MethodBegin { .. }) && vars.contains_key(&(op, Role::Acquire)) {
                let cv = obs
                    .durations()
                    .get(&op)
                    .filter(|s| s.len() >= 2)
                    .and_then(|s| DurationStats::from_samples(s))
                    .map(|st| st.coefficient_of_variation());
                cvs.push((op, cv));
            }
        }
        let sorted: Vec<f64> = {
            let mut s: Vec<f64> = cvs.iter().filter_map(|&(_, cv)| cv).collect();
            s.sort_by(|a, b| a.partial_cmp(b).expect("CVs are finite"));
            s
        };
        let n = sorted.len();
        for (op, cv) in cvs {
            let pct = match cv {
                Some(cv) if n > 1 => sorted.partition_point(|&x| x < cv) as f64 / (n - 1) as f64,
                _ => 0.5,
            };
            let v = vars[&(op, Role::Acquire)];
            model.minimize(LinExpr::term(v, cfg.lambda * (1.0 - pct.min(1.0))));
        }
    }

    // Mostly-Paired: field read/write pairing (Eq. 7) and per-class
    // acquire/release balance (Eq. 6).
    if cfg.hypotheses.mostly_paired {
        let mut fields: BTreeSet<(String, String)> = BTreeSet::new();
        for r in resolved.values() {
            if let OpRef::FieldRead { class, field } | OpRef::FieldWrite { class, field } = r {
                fields.insert((class.clone(), field.clone()));
            }
        }
        for (class, field) in fields {
            let read = OpRef::field_read(&class, &field).intern();
            let write = OpRef::field_write(&class, &field).intern();
            let mut expr = LinExpr::zero();
            if let Some(&v) = vars.get(&(read, Role::Acquire)) {
                expr.add_term(v, 1.0);
            }
            if let Some(&v) = vars.get(&(write, Role::Release)) {
                expr.add_term(v, -1.0);
            }
            if !expr.is_constant() {
                model.add_abs(expr, cfg.lambda);
            }
        }

        let mut classes: BTreeMap<String, LinExpr> = BTreeMap::new();
        for &((op, role), v) in &vars_ordered {
            let class = resolved[&op].class().to_string();
            let e = classes.entry(class).or_insert_with(LinExpr::zero);
            match role {
                Role::Acquire => e.add_term(v, 1.0),
                Role::Release => e.add_term(v, -1.0),
            }
        }
        for (_, expr) in classes {
            if !expr.is_constant() {
                model.add_abs(expr, cfg.lambda);
            }
        }
    }

    // Solve, then round: an LP optimum can sit on a degenerate face and
    // return fractional splits (e.g. 0.5 release + 0.5 acquire on one
    // library op satisfying two window families through the
    // acquire-xor-release cap). The paper reads off "variables assigned 1",
    // which presumes an integral vertex; we recover one by greedily fixing
    // the largest fractional variable to 1 and re-solving. Fixing a variable
    // never makes the system infeasible (every constraint admits it by
    // zeroing its competitors), so the loop terminates with an integral,
    // cost-minimal-up-to-greedy assignment.
    let run_solve = |model: &Model, basis: &mut Option<&mut Basis>| match basis {
        Some(b) => model.solve_warm(b),
        None => model.solve(),
    };
    let mut solution = run_solve(&model, &mut basis)?;
    let mut resolve_rounds: u64 = 0;
    for _ in 0..64 {
        // Iterate in name order so an exact tie in snapped probability fixes
        // the same variable in every process.
        let fractional = vars_ordered
            .iter()
            .map(|&(_, v)| (v, snap(solution.value(v))))
            .filter(|&(_, p)| p > 0.05 && p < cfg.threshold)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite probabilities"));
        let Some((v, _)) = fractional else { break };
        model.constrain_eq(LinExpr::from(v), 1.0);
        resolve_rounds += 1;
        solution = run_solve(&model, &mut basis)?;
    }
    sherlock_obs::histogram!("lp.resolve_rounds").observe(resolve_rounds);

    let mut probabilities = BTreeMap::new();
    let mut inferred = Vec::new();
    // `vars_ordered` is already (name, role) sorted, so `inferred` — and the
    // rendered report derived from it — is intern-order independent.
    for &((op, role), v) in &vars_ordered {
        let p = snap(solution.value(v)).clamp(0.0, 1.0);
        probabilities.insert((op, role), p);
        if p >= cfg.threshold {
            inferred.push(InferredOp {
                op,
                role,
                probability: p,
            });
        }
    }

    sherlock_obs::histogram!("lp.variables").observe(vars.len() as u64);
    sherlock_obs::histogram!("lp.windows").observe(windows.len() as u64);
    if sherlock_obs::jsonl_enabled() {
        use sherlock_obs::json::Json;
        sherlock_obs::event(
            "solve.round",
            &[
                ("num_vars", Json::from(vars.len() as u64)),
                ("num_windows", Json::from(windows.len() as u64)),
                ("racy_pairs", Json::from(racy.len() as u64)),
                ("resolve_rounds", Json::from(resolve_rounds)),
                ("inferred", Json::from(inferred.len() as u64)),
                ("objective", Json::Num(solution.objective)),
            ],
        );
    }
    Ok(InferenceReport {
        inferred,
        probabilities,
        objective: solution.objective,
        num_variables: vars.len(),
        num_windows: windows.len(),
        racy_pairs: racy.len(),
        telemetry: sherlock_obs::Snapshot::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_trace::windows::{Candidate, Window};
    use sherlock_trace::{ObjectId, ThreadId, Time};

    fn window(a: OpId, b: OpId, rel: &[OpId], acq: &[OpId]) -> Window {
        Window {
            a_op: a,
            b_op: b,
            a_thread: ThreadId(0),
            b_thread: ThreadId(1),
            a_time: Time::ZERO,
            b_time: Time::from_micros(5),
            object: ObjectId(1),
            release: rel.iter().map(|&op| Candidate { op, count: 1 }).collect(),
            acquire: acq.iter().map(|&op| Candidate { op, count: 1 }).collect(),
            release_capable: true,
            acquire_capable: true,
        }
    }

    fn obs_from(windows: &[Window]) -> Observations {
        let mut obs = Observations::new();
        for w in windows {
            obs.add_window(w);
        }
        obs
    }

    #[test]
    fn flag_pattern_inferred_as_write_release_read_acquire() {
        let w = OpRef::field_write("Solve", "flag").intern();
        let r = OpRef::field_read("Solve", "flag").intern();
        let obs = obs_from(&[window(w, r, &[w], &[r]), window(w, r, &[w], &[r])]);
        let report = solve(&obs, &SherLockConfig::default()).unwrap();
        assert!(report.contains(w, Role::Release), "{report:?}");
        assert!(report.contains(r, Role::Acquire), "{report:?}");
    }

    #[test]
    fn read_never_releases_write_never_acquires() {
        let w = OpRef::field_write("Solve2", "f").intern();
        let r = OpRef::field_read("Solve2", "f").intern();
        let obs = obs_from(&[window(w, r, &[w], &[r])]);
        let report = solve(&obs, &SherLockConfig::default()).unwrap();
        assert_eq!(report.probability(r, Role::Release), 0.0);
        assert_eq!(report.probability(w, Role::Acquire), 0.0);
    }

    #[test]
    fn without_mostly_protected_nothing_is_inferred() {
        let w = OpRef::field_write("Solve3", "f").intern();
        let r = OpRef::field_read("Solve3", "f").intern();
        let obs = obs_from(&[window(w, r, &[w], &[r])]);
        let mut cfg = SherLockConfig::default();
        cfg.hypotheses.mostly_protected = false;
        let report = solve(&obs, &cfg).unwrap();
        assert!(report.inferred.is_empty(), "{report:?}");
    }

    #[test]
    fn rare_ops_preferred_over_frequent_ones() {
        // Two release candidates: `frequent` occurs 10× per window, `rare`
        // once. The rarity penalty must steer inference to `rare`.
        let a = OpRef::field_write("Solve4", "data").intern();
        let b = OpRef::field_read("Solve4", "data").intern();
        let frequent = OpRef::app_end("Solve4", "Busy").intern();
        let rare = OpRef::app_end("Solve4", "Publish").intern();
        let mut obs = Observations::new();
        for _ in 0..3 {
            let mut w = window(a, b, &[], &[b]);
            w.release = vec![
                Candidate {
                    op: frequent,
                    count: 10,
                },
                Candidate { op: rare, count: 1 },
            ];
            obs.add_window(&w);
        }
        let report = solve(&obs, &SherLockConfig::default()).unwrap();
        assert!(report.contains(rare, Role::Release), "{report:?}");
        assert!(!report.contains(frequent, Role::Release), "{report:?}");
    }

    #[test]
    fn racy_pairs_are_not_protected() {
        let w = OpRef::field_write("Solve5", "racy").intern();
        let r = OpRef::field_read("Solve5", "racy").intern();
        let mut obs = obs_from(&[window(w, r, &[w], &[r])]);
        obs.mark_racy((w, r));
        let report = solve(&obs, &SherLockConfig::default()).unwrap();
        assert!(report.inferred.is_empty(), "{report:?}");
        assert_eq!(report.racy_pairs, 1);

        // With race removal ablated the pair is protected again.
        let mut cfg = SherLockConfig::default();
        cfg.feedback.race_removal = false;
        let report = solve(&obs, &cfg).unwrap();
        assert!(report.contains(w, Role::Release));
    }

    #[test]
    fn exclusions_remove_release_candidates() {
        let a = OpRef::field_write("Solve6", "x").intern();
        let b = OpRef::field_read("Solve6", "x").intern();
        let decoy = OpRef::app_end("Solve6", "Decoy").intern();
        let real = OpRef::app_end("Solve6", "Real").intern();
        let mut obs = obs_from(&[window(a, b, &[decoy, real], &[b])]);
        obs.exclude_release((a, b), decoy);
        let report = solve(&obs, &SherLockConfig::default()).unwrap();
        assert!(!report.contains(decoy, Role::Release), "{report:?}");
    }

    #[test]
    fn single_role_blocks_begin_rel_plus_end_acq() {
        // One API appears as the sole release candidate in one window (via
        // its begin) and the sole acquire candidate in another (via its end):
        // UpgradeToWriterLock's double role. With Single-Role on, at most one
        // side can win.
        let upg_b = OpRef::lib_begin("Solve7.RW", "Upgrade").intern();
        let upg_e = OpRef::lib_end("Solve7.RW", "Upgrade").intern();
        let a1 = OpRef::field_write("Solve7", "d1").intern();
        let b1 = OpRef::field_read("Solve7", "d1").intern();
        let a2 = OpRef::field_write("Solve7", "d2").intern();
        let b2 = OpRef::field_read("Solve7", "d2").intern();
        let obs = obs_from(&[
            window(a1, b1, &[upg_b], &[b1]),
            window(a2, b2, &[a2], &[upg_e]),
        ]);
        let cfg = SherLockConfig::default();
        let report = solve(&obs, &cfg).unwrap();
        let both = report.contains(upg_b, Role::Release) && report.contains(upg_e, Role::Acquire);
        assert!(!both, "single-role violated: {report:?}");

        let mut ablated = SherLockConfig::default();
        ablated.hypotheses.single_role = false;
        let report = solve(&obs, &ablated).unwrap();
        assert!(
            report.contains(upg_b, Role::Release) && report.contains(upg_e, Role::Acquire),
            "without single-role both sides should win: {report:?}"
        );
    }

    #[test]
    fn pairing_pulls_in_the_matching_write() {
        // The read side is strongly supported by three windows; the write
        // side appears in only one window together with a decoy that is
        // otherwise equally cheap. Mostly-Paired must break the tie toward
        // the write of the same field.
        let w = OpRef::field_write("Solve8", "flag").intern();
        let r = OpRef::field_read("Solve8", "flag").intern();
        let decoy = OpRef::app_end("Solve8", "Decoy").intern();
        let mut obs = Observations::new();
        for _ in 0..3 {
            obs.add_window(&window(w, r, &[w, decoy], &[r]));
        }
        let cfg = SherLockConfig::default();
        let report = solve(&obs, &cfg).unwrap();
        assert!(report.contains(w, Role::Release), "{report:?}");
        assert!(!report.contains(decoy, Role::Release), "{report:?}");
    }

    #[test]
    fn acquisition_time_varies_prefers_high_cv_methods() {
        use sherlock_trace::Time;
        let a = OpRef::field_write("Solve9", "q").intern();
        let b = OpRef::field_read("Solve9", "q").intern();
        let steady = OpRef::app_begin("Solve9", "Steady").intern();
        let vary = OpRef::app_begin("Solve9", "Vary").intern();
        let mut obs = obs_from(&[window(a, b, &[a], &[steady, vary])]);
        let mut d = sherlock_trace::durations::DurationMap::new();
        d.insert(steady, vec![Time::from_micros(5); 4]);
        d.insert(
            vary,
            vec![
                Time::from_micros(1),
                Time::from_micros(50),
                Time::from_micros(2),
                Time::from_micros(80),
            ],
        );
        obs.add_durations(d);
        // Remove the read from the acquire side so methods compete: rebuild.
        let mut cfg = SherLockConfig::default();
        cfg.hypotheses.mostly_paired = false; // isolate the duration term
        let report = solve(&obs, &cfg).unwrap();
        let p_vary = report.probability(vary, Role::Acquire);
        let p_steady = report.probability(steady, Role::Acquire);
        assert!(
            p_vary > p_steady,
            "vary={p_vary} steady={p_steady}: {report:?}"
        );
    }

    #[test]
    fn empty_observations_solve_to_empty_report() {
        let report = solve(&Observations::new(), &SherLockConfig::default()).unwrap();
        assert!(report.inferred.is_empty());
        assert_eq!(report.num_variables, 0);
        assert_eq!(report.num_windows, 0);
    }

    #[test]
    fn lambda_monotonicity_fewer_inferences_at_high_lambda() {
        // Table 6's trend: raising λ suppresses inference.
        let w = OpRef::field_write("Solve10", "m").intern();
        let r = OpRef::field_read("Solve10", "m").intern();
        let obs = obs_from(&[window(w, r, &[w], &[r])]);
        let mut low = SherLockConfig::default();
        low.lambda = 0.2;
        let mut high = SherLockConfig::default();
        high.lambda = 100.0;
        let n_low = solve(&obs, &low).unwrap().inferred.len();
        let n_high = solve(&obs, &high).unwrap().inferred.len();
        assert!(n_low >= n_high);
        assert_eq!(n_high, 0, "λ=100 should suppress this weak evidence");
    }
}
