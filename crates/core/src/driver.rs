//! The multi-round inference driver tying Observer, Solver, and Perturber
//! together (paper Fig. 1).
//!
//! All incremental state (observations, memoized windows, the solved
//! report) lives in a [`Session`]; the driver adds the parts that require
//! *running* tests — seed derivation, the Perturber's delay plans, and
//! per-round statistics.

use sherlock_lp::LpError;
use sherlock_obs as obs;
use sherlock_sim::{DelayPlan, SimConfig};

use crate::config::SherLockConfig;
use crate::observations::Observations;
use crate::perturber;
use crate::report::InferenceReport;
pub use crate::session::RoundStats;
use crate::session::Session;
use crate::testcase::TestCase;

/// A SherLock inference session over one application's test suite.
///
/// ```
/// use sherlock_core::{SherLock, SherLockConfig, TestCase};
/// use sherlock_sim::prims::TracedVar;
/// use sherlock_trace::Time;
///
/// let tests = vec![TestCase::new("flag", || {
///     let flag = TracedVar::new("Doc", "ready", false);
///     let f = flag.clone();
///     let h = sherlock_sim::api::spawn("w", move || {
///         f.spin_until(Time::from_micros(100), |v| v);
///     });
///     flag.set(true);
///     h.join();
/// })];
/// let mut sl = SherLock::new(SherLockConfig::default());
/// let report = sl.run_rounds(&tests, 3).unwrap();
/// assert!(report.contains_op(sherlock_trace::OpRef::field_write("Doc", "ready").intern()));
/// ```
pub struct SherLock {
    session: Session,
    round: usize,
    stats: Vec<RoundStats>,
}

impl SherLock {
    /// Creates a fresh session.
    pub fn new(config: SherLockConfig) -> Self {
        SherLock {
            session: Session::new(config),
            round: 0,
            stats: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SherLockConfig {
        self.session.config()
    }

    /// The latest inference report.
    pub fn report(&self) -> &InferenceReport {
        self.session.report()
    }

    /// The accumulated observations.
    pub fn observations(&self) -> &Observations {
        self.session.observations()
    }

    /// The underlying incremental session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Per-round diagnostics.
    pub fn stats(&self) -> &[RoundStats] {
        &self.stats
    }

    /// Rounds completed.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// Executes one round: runs every test once (with the Perturber's delay
    /// plan from the previous round), accumulates observations, and re-solves.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from the Solver.
    pub fn run_round(&mut self, tests: &[TestCase]) -> Result<&InferenceReport, LpError> {
        let _round = obs::span("driver.round");
        obs::counter!("driver.rounds").incr();
        let config = self.session.config().clone();
        if !config.feedback.accumulate {
            self.session.clear_observations();
        }
        let plan = {
            let _s = obs::span("phase.perturb");
            if config.feedback.inject_delays && self.round > 0 {
                perturber::delay_plan_with_probability(
                    self.session.report(),
                    config.delay,
                    config.delay_probability,
                )
            } else {
                DelayPlan::none()
            }
        };

        let mut stats = RoundStats::default();
        for (i, test) in tests.iter().enumerate() {
            let seed = config
                .base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((self.round as u64) << 32)
                .wrapping_add(i as u64);
            let mut sim_cfg = SimConfig::with_seed(seed);
            sim_cfg.instrument = config.instrument.clone();
            sim_cfg.delay_plan = plan.clone();

            let run = {
                let _s = obs::span("phase.observe");
                obs::counter!("driver.tests_run").incr();
                test.run(sim_cfg)
            };

            let absorbed = self.session.absorb_trace(&run.trace);
            stats.events += absorbed.events;
            stats.windows_extracted += absorbed.windows_extracted;
            stats.racy_windows += absorbed.racy_windows;
            stats.confirmations += absorbed.confirmations;
            stats.exclusions += absorbed.exclusions;
            stats.panics += run.panics.len();
        }
        obs::counter!("windows.racy").add(stats.racy_windows as u64);

        self.session.solve()?;
        self.round += 1;
        obs::debug!(
            "driver",
            "round {} done: {} events, {} windows ({} racy), {} confirmations, {} exclusions",
            self.round,
            stats.events,
            stats.windows_extracted,
            stats.racy_windows,
            stats.confirmations,
            stats.exclusions
        );
        self.stats.push(stats);
        drop(_round);
        self.session.refresh_telemetry();
        Ok(self.session.report())
    }

    /// Feeds one externally produced trace (e.g. an explored schedule from
    /// `sherlock-sim`'s Explorer) into the session's observations — exactly
    /// the Observer path of [`run_round`](Self::run_round), minus running a
    /// test. Call [`resolve`](Self::resolve) afterwards to fold the new
    /// evidence into the report.
    pub fn absorb_trace(&mut self, trace: &sherlock_trace::Trace) -> RoundStats {
        let _s = obs::span("driver.absorb_trace");
        obs::counter!("driver.traces_absorbed").incr();
        self.session.absorb_trace(trace)
    }

    /// Re-solves over the accumulated observations without running any test
    /// — the companion of [`absorb_trace`](Self::absorb_trace). Memoized:
    /// when nothing was absorbed since the last solve the cached report is
    /// returned.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from the Solver.
    pub fn resolve(&mut self) -> Result<&InferenceReport, LpError> {
        self.session.solve()?;
        self.session.refresh_telemetry();
        Ok(self.session.report())
    }

    /// Runs `rounds` full rounds (3 in the paper) and returns the final
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from the Solver.
    pub fn run_rounds(
        &mut self,
        tests: &[TestCase],
        rounds: usize,
    ) -> Result<InferenceReport, LpError> {
        for _ in 0..rounds {
            self.run_round(tests)?;
        }
        Ok(self.session.report().clone())
    }
}

/// Convenience: a full default-configured session.
///
/// # Errors
///
/// Propagates [`LpError`] from the Solver.
pub fn infer(tests: &[TestCase], rounds: usize) -> Result<InferenceReport, LpError> {
    SherLock::new(SherLockConfig::default()).run_rounds(tests, rounds)
}

/// Convenience: a default-configured session whose simulator schedules
/// derive from `base_seed` — the entry point for generated test cases
/// (fleet apps), where each app pins its own seed so inference over it is
/// reproducible independent of which other apps ran first.
///
/// # Errors
///
/// Propagates [`LpError`] from the Solver.
pub fn infer_seeded(
    tests: &[TestCase],
    rounds: usize,
    base_seed: u64,
) -> Result<InferenceReport, LpError> {
    let cfg = SherLockConfig {
        base_seed,
        ..SherLockConfig::default()
    };
    SherLock::new(cfg).run_rounds(tests, rounds)
}
