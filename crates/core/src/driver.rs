//! The multi-round inference driver tying Observer, Solver, and Perturber
//! together (paper Fig. 1).

use sherlock_lp::LpError;
use sherlock_obs as obs;
use sherlock_sim::{DelayPlan, SimConfig};
use sherlock_trace::durations;
use sherlock_trace::windows::{self, WindowConfig};

use crate::config::SherLockConfig;
use crate::observations::Observations;
use crate::perturber;
use crate::report::InferenceReport;
use crate::solver;
use crate::testcase::TestCase;

/// Per-run diagnostics the driver collects.
#[derive(Clone, Debug, Default)]
pub struct RoundStats {
    /// Windows extracted this round (before deduplication).
    pub windows_extracted: usize,
    /// Racy windows witnessed this round.
    pub racy_windows: usize,
    /// Delay-propagation confirmations this round.
    pub confirmations: usize,
    /// New release exclusions this round.
    pub exclusions: usize,
    /// Trace events observed this round.
    pub events: usize,
    /// Simulated-thread panics (e.g. racy assertion failures) this round.
    pub panics: usize,
}

/// A SherLock inference session over one application's test suite.
///
/// ```
/// use sherlock_core::{SherLock, SherLockConfig, TestCase};
/// use sherlock_sim::prims::TracedVar;
/// use sherlock_trace::Time;
///
/// let tests = vec![TestCase::new("flag", || {
///     let flag = TracedVar::new("Doc", "ready", false);
///     let f = flag.clone();
///     let h = sherlock_sim::api::spawn("w", move || {
///         f.spin_until(Time::from_micros(100), |v| v);
///     });
///     flag.set(true);
///     h.join();
/// })];
/// let mut sl = SherLock::new(SherLockConfig::default());
/// let report = sl.run_rounds(&tests, 3).unwrap();
/// assert!(report.contains_op(sherlock_trace::OpRef::field_write("Doc", "ready").intern()));
/// ```
pub struct SherLock {
    config: SherLockConfig,
    observations: Observations,
    report: InferenceReport,
    round: usize,
    stats: Vec<RoundStats>,
    /// Metric values at session start; every report's `telemetry` is the
    /// delta against this, so it covers exactly this session's work.
    session_start: obs::Snapshot,
}

impl SherLock {
    /// Creates a fresh session.
    pub fn new(config: SherLockConfig) -> Self {
        SherLock {
            config,
            observations: Observations::new(),
            report: InferenceReport::default(),
            round: 0,
            stats: Vec::new(),
            session_start: obs::snapshot(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SherLockConfig {
        &self.config
    }

    /// The latest inference report.
    pub fn report(&self) -> &InferenceReport {
        &self.report
    }

    /// The accumulated observations.
    pub fn observations(&self) -> &Observations {
        &self.observations
    }

    /// Per-round diagnostics.
    pub fn stats(&self) -> &[RoundStats] {
        &self.stats
    }

    /// Rounds completed.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// Executes one round: runs every test once (with the Perturber's delay
    /// plan from the previous round), accumulates observations, and re-solves.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from the Solver.
    pub fn run_round(&mut self, tests: &[TestCase]) -> Result<&InferenceReport, LpError> {
        let _round = obs::span("driver.round");
        obs::counter!("driver.rounds").incr();
        if !self.config.feedback.accumulate {
            self.observations = Observations::new();
        }
        let plan = {
            let _s = obs::span("phase.perturb");
            if self.config.feedback.inject_delays && self.round > 0 {
                perturber::delay_plan_with_probability(
                    &self.report,
                    self.config.delay,
                    self.config.delay_probability,
                )
            } else {
                DelayPlan::none()
            }
        };

        let wcfg = WindowConfig {
            near: self.config.near,
            cap_per_pair: self.config.cap_per_pair,
        };
        let mut stats = RoundStats::default();

        for (i, test) in tests.iter().enumerate() {
            let seed = self
                .config
                .base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((self.round as u64) << 32)
                .wrapping_add(i as u64);
            let mut sim_cfg = SimConfig::with_seed(seed);
            sim_cfg.instrument = self.config.instrument.clone();
            sim_cfg.delay_plan = plan.clone();

            let run = {
                let _s = obs::span("phase.observe");
                obs::counter!("driver.tests_run").incr();
                test.run(sim_cfg)
            };
            stats.events += run.trace.len();
            stats.panics += run.panics.len();

            let mut ws = {
                let _s = obs::span("phase.windows");
                windows::extract(&run.trace, &wcfg)
            };
            stats.windows_extracted += ws.len();

            let refinement = {
                let _s = obs::span("phase.perturb");
                perturber::refine_windows(&run.trace, &mut ws)
            };
            obs::counter!("perturber.confirmations").add(refinement.confirmations as u64);
            obs::counter!("perturber.exclusions").add(refinement.exclusions.len() as u64);
            stats.confirmations += refinement.confirmations;
            stats.exclusions += refinement.exclusions.len();
            for (pair, op) in refinement.exclusions {
                self.observations.exclude_release(pair, op);
            }

            for w in &ws {
                if w.is_racy() {
                    stats.racy_windows += 1;
                    self.observations.mark_racy(w.pair());
                }
                self.observations.add_window(w);
            }
            self.observations
                .add_durations(durations::extract(&run.trace));
            self.observations.finish_run();
        }
        obs::counter!("windows.racy").add(stats.racy_windows as u64);

        self.report = {
            let _s = obs::span("phase.solve");
            solver::solve(&self.observations, &self.config)?
        };
        self.round += 1;
        obs::debug!(
            "driver",
            "round {} done: {} events, {} windows ({} racy), {} confirmations, {} exclusions",
            self.round,
            stats.events,
            stats.windows_extracted,
            stats.racy_windows,
            stats.confirmations,
            stats.exclusions
        );
        self.stats.push(stats);
        drop(_round);
        self.report.telemetry = obs::snapshot().delta(&self.session_start);
        Ok(&self.report)
    }

    /// Feeds one externally produced trace (e.g. an explored schedule from
    /// `sherlock-sim`'s Explorer) into the session's observations: windows
    /// are extracted, refined against any delay records the trace carries,
    /// racy pairs marked, and durations accumulated — exactly the Observer
    /// path of [`run_round`](Self::run_round), minus running a test. Call
    /// [`resolve`](Self::resolve) afterwards to fold the new evidence into
    /// the report.
    pub fn absorb_trace(&mut self, trace: &sherlock_trace::Trace) -> RoundStats {
        let _s = obs::span("driver.absorb_trace");
        obs::counter!("driver.traces_absorbed").incr();
        let wcfg = WindowConfig {
            near: self.config.near,
            cap_per_pair: self.config.cap_per_pair,
        };
        let mut stats = RoundStats::default();
        stats.events = trace.len();
        let mut ws = windows::extract(trace, &wcfg);
        stats.windows_extracted = ws.len();
        let refinement = perturber::refine_windows(trace, &mut ws);
        stats.confirmations = refinement.confirmations;
        stats.exclusions = refinement.exclusions.len();
        for (pair, op) in refinement.exclusions {
            self.observations.exclude_release(pair, op);
        }
        for w in &ws {
            if w.is_racy() {
                stats.racy_windows += 1;
                self.observations.mark_racy(w.pair());
            }
            self.observations.add_window(w);
        }
        self.observations.add_durations(durations::extract(trace));
        self.observations.finish_run();
        stats
    }

    /// Re-solves over the accumulated observations without running any test
    /// — the companion of [`absorb_trace`](Self::absorb_trace).
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from the Solver.
    pub fn resolve(&mut self) -> Result<&InferenceReport, LpError> {
        self.report = {
            let _s = obs::span("phase.solve");
            solver::solve(&self.observations, &self.config)?
        };
        self.report.telemetry = obs::snapshot().delta(&self.session_start);
        Ok(&self.report)
    }

    /// Runs `rounds` full rounds (3 in the paper) and returns the final
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from the Solver.
    pub fn run_rounds(
        &mut self,
        tests: &[TestCase],
        rounds: usize,
    ) -> Result<InferenceReport, LpError> {
        for _ in 0..rounds {
            self.run_round(tests)?;
        }
        Ok(self.report.clone())
    }
}

/// Convenience: a full default-configured session.
///
/// # Errors
///
/// Propagates [`LpError`] from the Solver.
pub fn infer(tests: &[TestCase], rounds: usize) -> Result<InferenceReport, LpError> {
    SherLock::new(SherLockConfig::default()).run_rounds(tests, rounds)
}
