//! A reusable incremental inference session.
//!
//! Everything upstream of the Solver is additive: absorbing a trace only
//! ever *accumulates* windows, exclusions, and durations into
//! [`Observations`]. [`Session`] packages that incremental state behind a
//! public API so long-lived clients (the [`SherLock`](crate::SherLock)
//! driver, `sherlock solve`, the `sherlock-serve` daemon) can stream traces
//! run-by-run and re-solve only over the delta — instead of rebuilding
//! windows, constraints, and the LP from zero on every query, which is what
//! the paper's §4.3 feedback loop explicitly accumulates between runs.
//!
//! Two layers of memoization keep repeated queries cheap:
//!
//! * **Window extraction** — absorbing a trace whose full content hash was
//!   seen before reuses the cached (already refined) windows, exclusions,
//!   and durations rather than re-running extraction
//!   (`session.window_memo.*` counters; bounded FIFO cache).
//! * **Solving** — [`Session::solve`] re-runs the LP only when observations
//!   changed since the last solve; otherwise the cached
//!   [`InferenceReport`] is returned as-is (`session.solve_memo.hits`).
//!
//! Determinism is preserved: a session that absorbed traces `t1..tk` in any
//! order holds exactly the same observations — and therefore solves to a
//! byte-identical report — as a fresh session absorbing the same multiset
//! from scratch (see `tests/serve_parity.rs`).

use std::collections::{HashMap, VecDeque};

use sherlock_lp::LpError;
use sherlock_obs as obs;
use sherlock_trace::durations::{self, DurationMap};
use sherlock_trace::windows::{self, Window, WindowConfig};
use sherlock_trace::Trace;

use crate::config::SherLockConfig;
use crate::observations::Observations;
use crate::perturber;
use crate::report::InferenceReport;
use crate::solver;

/// Per-run diagnostics collected when a trace is absorbed (and, in the
/// driver, per round).
#[derive(Clone, Debug, Default)]
pub struct RoundStats {
    /// Windows extracted this round (before deduplication).
    pub windows_extracted: usize,
    /// Racy windows witnessed this round.
    pub racy_windows: usize,
    /// Delay-propagation confirmations this round.
    pub confirmations: usize,
    /// New release exclusions this round.
    pub exclusions: usize,
    /// Trace events observed this round.
    pub events: usize,
    /// Simulated-thread panics (e.g. racy assertion failures) this round.
    pub panics: usize,
}

/// Everything absorbing one trace contributes, cached by full content hash
/// so re-absorbing an identical trace skips extraction and refinement.
#[derive(Clone)]
struct AbsorbedTrace {
    /// Refined windows (delay-propagation already applied).
    windows: Vec<Window>,
    /// Release candidates disproven by failed delay propagation.
    exclusions: Vec<(
        (sherlock_trace::OpId, sherlock_trace::OpId),
        sherlock_trace::OpId,
    )>,
    /// Windows whose injected delay propagated.
    confirmations: usize,
    /// Per-op duration samples.
    durations: DurationMap,
    /// Events in the trace.
    events: usize,
}

/// [`Trace::stable_hash`] deliberately ignores timestamps (it identifies
/// *schedules*); window extraction depends on them, so the memo key mixes
/// every event and delay time back in.
fn content_hash(trace: &Trace) -> u64 {
    let mut h = trace.stable_hash();
    let mut mix = |v: u64| {
        h ^= v
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
    };
    for e in trace.events() {
        mix(e.time.as_nanos());
    }
    for d in trace.delays() {
        mix(d.start.as_nanos());
        mix(d.end.as_nanos());
    }
    h
}

/// Default bound on the window-extraction memo (absorbed-trace cache).
pub const DEFAULT_MEMO_CAPACITY: usize = 128;

/// An incremental inference session: accumulated [`Observations`], the last
/// solved [`InferenceReport`], and the memo caches described in the
/// [module docs](self).
pub struct Session {
    config: SherLockConfig,
    observations: Observations,
    report: InferenceReport,
    /// Observations changed since the last solve.
    dirty: bool,
    /// At least one solve has completed.
    solved: bool,
    traces_absorbed: usize,
    memo: HashMap<u64, AbsorbedTrace>,
    memo_order: VecDeque<u64>,
    memo_capacity: usize,
    /// Optimal basis of the last LP round, warm-starting the next solve
    /// (active when [`SherLockConfig::warm_start`] is set).
    basis: sherlock_lp::Basis,
    /// Metric values at session start; report telemetry is the delta.
    session_start: obs::Snapshot,
}

impl Session {
    /// Creates an empty session.
    pub fn new(config: SherLockConfig) -> Self {
        Session {
            config,
            observations: Observations::new(),
            report: InferenceReport::default(),
            dirty: false,
            solved: false,
            traces_absorbed: 0,
            memo: HashMap::new(),
            memo_order: VecDeque::new(),
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            basis: sherlock_lp::Basis::new(),
            session_start: obs::snapshot(),
        }
    }

    /// Bounds the window-extraction memo (0 disables it).
    pub fn set_memo_capacity(&mut self, capacity: usize) {
        self.memo_capacity = capacity;
        while self.memo.len() > capacity {
            if let Some(old) = self.memo_order.pop_front() {
                self.memo.remove(&old);
            } else {
                break;
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SherLockConfig {
        &self.config
    }

    /// The accumulated observations.
    pub fn observations(&self) -> &Observations {
        &self.observations
    }

    /// The last solved report (default-empty before the first solve).
    pub fn report(&self) -> &InferenceReport {
        &self.report
    }

    /// Whether observations changed since the last solve.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Traces absorbed over the session's lifetime.
    pub fn traces_absorbed(&self) -> usize {
        self.traces_absorbed
    }

    /// Entries currently held by the window-extraction memo.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Drops all accumulated observations (used by the driver's
    /// `accumulate = false` ablation); the memo caches survive.
    pub fn clear_observations(&mut self) {
        self.observations = Observations::new();
        // The old optimum says nothing about the next (unrelated) model.
        self.basis.clear();
        self.dirty = true;
    }

    /// Re-stamps the current report's telemetry as the metric delta since
    /// session start (the driver calls this after its round span closes).
    pub fn refresh_telemetry(&mut self) {
        self.report.telemetry = obs::snapshot().delta(&self.session_start);
    }

    fn extract(trace: &Trace, wcfg: &WindowConfig) -> AbsorbedTrace {
        let mut ws = {
            let _s = obs::span("phase.windows");
            windows::extract(trace, wcfg)
        };
        let refinement = {
            let _s = obs::span("phase.perturb");
            perturber::refine_windows(trace, &mut ws)
        };
        AbsorbedTrace {
            windows: ws,
            exclusions: refinement.exclusions,
            confirmations: refinement.confirmations,
            durations: durations::extract(trace),
            events: trace.len(),
        }
    }

    /// Feeds one trace into the session's observations: windows are
    /// extracted (or recalled from the memo), refined against any delay
    /// records the trace carries, racy pairs marked, and durations
    /// accumulated. Call [`solve`](Self::solve) afterwards to fold the new
    /// evidence into the report.
    pub fn absorb_trace(&mut self, trace: &Trace) -> RoundStats {
        let _s = obs::span("session.absorb");
        obs::counter!("session.traces_absorbed").incr();
        let wcfg = WindowConfig {
            near: self.config.near,
            cap_per_pair: self.config.cap_per_pair,
        };

        let key = content_hash(trace);
        let mut memo_hit = true;
        let absorbed = match self.memo.get(&key) {
            Some(hit) => {
                obs::counter!("session.window_memo.hits").incr();
                hit.clone()
            }
            None => {
                memo_hit = false;
                obs::counter!("session.window_memo.misses").incr();
                let a = Self::extract(trace, &wcfg);
                if self.memo_capacity > 0 {
                    if self.memo.len() >= self.memo_capacity {
                        if let Some(old) = self.memo_order.pop_front() {
                            self.memo.remove(&old);
                            obs::counter!("session.window_memo.evictions").incr();
                        }
                    }
                    self.memo.insert(key, a.clone());
                    self.memo_order.push_back(key);
                }
                a
            }
        };

        let mut stats = RoundStats::default();
        stats.events = absorbed.events;
        stats.windows_extracted = absorbed.windows.len();
        stats.confirmations = absorbed.confirmations;
        stats.exclusions = absorbed.exclusions.len();
        obs::counter!("perturber.confirmations").add(absorbed.confirmations as u64);
        obs::counter!("perturber.exclusions").add(absorbed.exclusions.len() as u64);
        for (pair, op) in &absorbed.exclusions {
            self.observations.exclude_release(*pair, *op);
        }
        for w in &absorbed.windows {
            if w.is_racy() {
                stats.racy_windows += 1;
                self.observations.mark_racy(w.pair());
            }
            self.observations.add_window(w);
        }
        self.observations.add_durations(absorbed.durations);
        self.observations.finish_run();
        self.traces_absorbed += 1;
        self.dirty = true;
        if obs::jsonl_enabled() {
            use obs::json::Json;
            obs::event(
                "session.absorb",
                &[
                    ("memo_hit", Json::Bool(memo_hit)),
                    ("events", Json::from(stats.events as u64)),
                    ("windows", Json::from(stats.windows_extracted as u64)),
                    ("racy", Json::from(stats.racy_windows as u64)),
                    ("exclusions", Json::from(stats.exclusions as u64)),
                ],
            );
        }
        stats
    }

    /// Feeds a batch of traces into the session — the campaign-engine path,
    /// where serve's `explore` verb absorbs every distinct schedule a
    /// campaign discovered. Returns the aggregate [`RoundStats`] summed over
    /// the batch. Equivalent to calling [`absorb_trace`](Self::absorb_trace)
    /// in order; exists so batch callers get one span and one counter bump
    /// instead of per-trace bookkeeping at the call site.
    pub fn absorb_traces<'a>(&mut self, traces: impl IntoIterator<Item = &'a Trace>) -> RoundStats {
        let _s = obs::span("session.absorb_batch");
        let mut total = RoundStats::default();
        let mut n = 0u64;
        for trace in traces {
            let stats = self.absorb_trace(trace);
            total.events += stats.events;
            total.windows_extracted += stats.windows_extracted;
            total.racy_windows += stats.racy_windows;
            total.confirmations += stats.confirmations;
            total.exclusions += stats.exclusions;
            total.panics += stats.panics;
            n += 1;
        }
        obs::counter!("session.absorb_batches").incr();
        obs::counter!("session.batch_traces_absorbed").add(n);
        total
    }

    /// Serializes the session's durable state for a `sherlock-store`
    /// snapshot: the accumulated [`Observations`] plus the absorb counter.
    ///
    /// The memo caches, warm-start basis, and cached report are deliberately
    /// *not* serialized — they are recomputed state, and the warm-vs-cold
    /// byte-parity suite (`tests/warm_parity.rs`) plus the solver's
    /// name-derived ordering guarantee a rehydrated session re-solves to a
    /// byte-identical report without them.
    pub fn to_snapshot_value(&self) -> obs::json::Json {
        use obs::json::Json;
        Json::Obj(vec![
            ("format".to_string(), Json::from(1u64)),
            (
                "traces_absorbed".to_string(),
                Json::from(self.traces_absorbed as u64),
            ),
            ("observations".to_string(), self.observations.to_value()),
        ])
    }

    /// Rebuilds a session from a value produced by
    /// [`to_snapshot_value`](Self::to_snapshot_value). The session starts
    /// dirty (the first solve after rehydration runs the LP from scratch).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first schema violation or an
    /// unsupported format version.
    pub fn from_snapshot_value(
        config: SherLockConfig,
        v: &obs::json::Json,
    ) -> Result<Self, String> {
        use obs::json::Json;
        match v.get("format").and_then(Json::as_u64) {
            Some(1) => {}
            other => return Err(format!("snapshot: unsupported format {other:?}")),
        }
        let traces_absorbed = v
            .get("traces_absorbed")
            .and_then(Json::as_u64)
            .ok_or("snapshot: missing traces_absorbed")?;
        let observations = Observations::from_value(
            v.get("observations")
                .ok_or("snapshot: missing observations")?,
        )?;
        let mut s = Session::new(config);
        s.observations = observations;
        s.traces_absorbed = usize::try_from(traces_absorbed)
            .map_err(|_| "snapshot: traces_absorbed out of range")?;
        s.dirty = true;
        Ok(s)
    }

    /// Solves over the accumulated observations, memoized: when nothing was
    /// absorbed since the last solve the cached report is returned without
    /// touching the LP.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from the Solver.
    pub fn solve(&mut self) -> Result<&InferenceReport, LpError> {
        if self.solved && !self.dirty {
            obs::counter!("session.solve_memo.hits").incr();
            if obs::jsonl_enabled() {
                obs::event(
                    "session.solve",
                    &[("memo_hit", obs::json::Json::Bool(true))],
                );
            }
            return Ok(&self.report);
        }
        if obs::jsonl_enabled() {
            obs::event(
                "session.solve",
                &[("memo_hit", obs::json::Json::Bool(false))],
            );
        }
        self.report = {
            let _s = obs::span("phase.solve");
            if self.config.warm_start {
                solver::solve_warm(&self.observations, &self.config, &mut self.basis)?
            } else {
                solver::solve(&self.observations, &self.config)?
            }
        };
        self.report.telemetry = obs::snapshot().delta(&self.session_start);
        self.dirty = false;
        self.solved = true;
        Ok(&self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::TestCase;
    use sherlock_sim::prims::TracedVar;
    use sherlock_sim::SimConfig;

    fn sample_trace(seed: u64) -> Trace {
        let t = TestCase::new("session_sample", || {
            let v = TracedVar::new("Sess", "x", 0u32);
            let v2 = v.clone();
            let h = sherlock_sim::api::spawn("w", move || v2.set(1));
            v.set(2);
            let _ = v.get();
            h.join();
        });
        t.run(SimConfig::with_seed(seed)).trace
    }

    #[test]
    fn incremental_absorb_matches_from_scratch() {
        let traces: Vec<Trace> = (0..4).map(sample_trace).collect();

        let mut incremental = Session::new(SherLockConfig::default());
        for t in &traces {
            incremental.absorb_trace(t);
            incremental.solve().unwrap();
        }

        let mut scratch = Session::new(SherLockConfig::default());
        for t in &traces {
            scratch.absorb_trace(t);
        }
        scratch.solve().unwrap();

        assert_eq!(incremental.report().render(), scratch.report().render());
        assert_eq!(incremental.traces_absorbed(), scratch.traces_absorbed());
    }

    #[test]
    fn solve_is_memoized_until_dirty() {
        let mut s = Session::new(SherLockConfig::default());
        s.absorb_trace(&sample_trace(7));
        assert!(s.is_dirty());
        let first = s.solve().unwrap().render();
        assert!(!s.is_dirty());
        // A second solve with no new evidence must be a cache hit returning
        // the identical report.
        let again = s.solve().unwrap().render();
        assert_eq!(first, again);
        s.absorb_trace(&sample_trace(8));
        assert!(s.is_dirty());
    }

    #[test]
    fn window_memo_reuses_identical_traces() {
        let trace = sample_trace(3);
        let mut memoized = Session::new(SherLockConfig::default());
        memoized.absorb_trace(&trace);
        memoized.absorb_trace(&trace);
        assert_eq!(memoized.memo_len(), 1, "identical traces share one entry");

        let mut unmemoized = Session::new(SherLockConfig::default());
        unmemoized.set_memo_capacity(0);
        unmemoized.absorb_trace(&trace);
        unmemoized.absorb_trace(&trace);
        assert_eq!(unmemoized.memo_len(), 0);

        // The memo is an optimization only: double absorption accumulates
        // the same observations either way.
        memoized.solve().unwrap();
        unmemoized.solve().unwrap();
        assert_eq!(memoized.report().render(), unmemoized.report().render());
        assert_eq!(
            memoized.observations().runs(),
            unmemoized.observations().runs()
        );
    }

    #[test]
    fn memo_capacity_is_bounded() {
        let mut s = Session::new(SherLockConfig::default());
        s.set_memo_capacity(2);
        for seed in 0..5 {
            s.absorb_trace(&sample_trace(seed));
        }
        assert!(s.memo_len() <= 2);
    }

    #[test]
    fn snapshot_round_trip_solves_identically() {
        let mut original = Session::new(SherLockConfig::default());
        for seed in 0..4 {
            original.absorb_trace(&sample_trace(seed));
        }
        let snap = original.to_snapshot_value();
        let mut restored =
            Session::from_snapshot_value(SherLockConfig::default(), &snap).expect("restore");
        assert!(restored.is_dirty());
        assert_eq!(restored.traces_absorbed(), original.traces_absorbed());
        assert_eq!(
            restored.observations().runs(),
            original.observations().runs()
        );
        let a = original.solve().unwrap().render();
        let b = restored.solve().unwrap().render();
        assert_eq!(a, b, "rehydrated session must solve byte-identical");
    }

    #[test]
    fn snapshot_rejects_unknown_format() {
        use obs::json::Json;
        let v = Json::Obj(vec![("format".to_string(), Json::from(9u64))]);
        assert!(Session::from_snapshot_value(SherLockConfig::default(), &v).is_err());
    }

    #[test]
    fn content_hash_distinguishes_timestamps() {
        // Two runs of the same schedule-insensitive workload at different
        // seeds may share a stable hash; the content hash must include
        // times, so absorbing distinct-timing traces never aliases.
        let a = sample_trace(1);
        let b = sample_trace(1);
        assert_eq!(content_hash(&a), content_hash(&b), "same run, same hash");
    }
}
