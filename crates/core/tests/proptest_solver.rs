//! Property tests for the Solver over randomized observation sets: the hard
//! properties of §4.2 must hold for *every* input, and outputs are valid
//! probabilities. Driven by `sherlock_sim::testutil` so they run under plain
//! `cargo test` with no external generator crate.

use sherlock_core::{solver, Observations, Role, SherLockConfig};
use sherlock_sim::testutil::{check, shrink_vec, Config, Gen};
use sherlock_trace::windows::{Candidate, Window};
use sherlock_trace::{ObjectId, OpId, OpRef, ThreadId, Time};

#[derive(Clone, Debug)]
struct WindowSpec {
    pair_field: usize,
    rel_methods: Vec<usize>,
    acq_methods: Vec<usize>,
    counts: (u32, u32),
    racy: bool,
}

fn gen_window_spec(g: &mut Gen) -> WindowSpec {
    WindowSpec {
        pair_field: g.usize_in(0, 3),
        rel_methods: g.vec(0, 2, |g| g.usize_in(0, 4)),
        acq_methods: g.vec(0, 2, |g| g.usize_in(0, 4)),
        counts: (g.u64_in(1, 3) as u32, g.u64_in(1, 3) as u32),
        racy: g.bool(0.15),
    }
}

fn gen_specs(max: usize) -> impl FnMut(&mut Gen) -> Vec<WindowSpec> {
    move |g| g.vec(0, max, gen_window_spec)
}

/// Shrinks by dropping windows, then by simplifying the surviving ones.
fn shrink_specs(specs: &[WindowSpec]) -> Vec<Vec<WindowSpec>> {
    let mut out = shrink_vec(specs);
    for (i, s) in specs.iter().enumerate() {
        if !s.rel_methods.is_empty() || !s.acq_methods.is_empty() {
            let mut simpler = specs.to_vec();
            simpler[i].rel_methods.clear();
            simpler[i].acq_methods.clear();
            out.push(simpler);
        }
        if s.racy {
            let mut simpler = specs.to_vec();
            simpler[i].racy = false;
            out.push(simpler);
        }
    }
    out
}

fn field_ops(i: usize) -> (OpId, OpId) {
    (
        OpRef::field_write("PSol", format!("f{i}")).intern(),
        OpRef::field_read("PSol", format!("f{i}")).intern(),
    )
}

fn build_observations(specs: &[WindowSpec]) -> Observations {
    let mut obs = Observations::new();
    for (k, s) in specs.iter().enumerate() {
        let (w, r) = field_ops(s.pair_field);
        let mut release = vec![Candidate {
            op: w,
            count: s.counts.0,
        }];
        let mut acquire = vec![Candidate {
            op: r,
            count: s.counts.1,
        }];
        for &m in &s.rel_methods {
            release.push(Candidate {
                op: OpRef::app_end("PSol", format!("m{m}")).intern(),
                count: 1,
            });
        }
        for &m in &s.acq_methods {
            acquire.push(Candidate {
                op: OpRef::app_begin("PSol", format!("m{m}")).intern(),
                count: 1,
            });
        }
        release.sort_by_key(|c| c.op);
        release.dedup_by_key(|c| c.op);
        acquire.sort_by_key(|c| c.op);
        acquire.dedup_by_key(|c| c.op);
        let window = Window {
            a_op: w,
            b_op: r,
            a_thread: ThreadId(0),
            b_thread: ThreadId(1),
            a_time: Time::from_micros(10 * k as u64),
            b_time: Time::from_micros(10 * k as u64 + 5),
            object: ObjectId(1),
            release,
            acquire,
            release_capable: true,
            acquire_capable: true,
        };
        if s.racy {
            obs.mark_racy(window.pair());
        }
        obs.add_window(&window);
    }
    obs.finish_run();
    obs
}

fn cases(n: u64) -> Config {
    Config {
        cases: n,
        ..Config::default()
    }
}

/// Hard properties: probabilities in [0,1]; reads never release, writes
/// never acquire, app begins never release, app ends never acquire; one
/// op never holds both roles at once.
#[test]
fn hard_constraints_hold() {
    check(
        &cases(64),
        gen_specs(10),
        |s| shrink_specs(s),
        |specs| {
            let obs = build_observations(specs);
            let report = solver::solve(&obs, &SherLockConfig::default()).expect("solvable");
            for (&(op, role), &p) in &report.probabilities {
                if !(0.0..=1.0 + 1e-7).contains(&p) {
                    return Err(format!("p out of range: {p}"));
                }
                let r = op.resolve();
                match role {
                    Role::Release if !r.can_release() => {
                        return Err(format!("{r} released"));
                    }
                    Role::Acquire if !r.can_acquire() => {
                        return Err(format!("{r} acquired"));
                    }
                    _ => {}
                }
            }
            for i in &report.inferred {
                if report
                    .inferred
                    .iter()
                    .any(|j| j.op == i.op && j.role != i.role)
                {
                    return Err(format!("op {} inferred in both roles", i.op));
                }
            }
            Ok(())
        },
    );
}

/// Solving twice over the same observations is deterministic.
#[test]
fn solving_is_deterministic() {
    check(
        &cases(64),
        gen_specs(8),
        |s| shrink_specs(s),
        |specs| {
            let obs = build_observations(specs);
            let cfg = SherLockConfig::default();
            let a = solver::solve(&obs, &cfg).expect("solvable");
            let b = solver::solve(&obs, &cfg).expect("solvable");
            if a.inferred != b.inferred {
                return Err(format!("{:?} != {:?}", a.inferred, b.inferred));
            }
            Ok(())
        },
    );
}

/// With Mostly-Protected ablated, nothing is ever inferred.
#[test]
fn no_protection_no_inference() {
    check(
        &cases(64),
        gen_specs(8),
        |s| shrink_specs(s),
        |specs| {
            let obs = build_observations(specs);
            let mut cfg = SherLockConfig::default();
            cfg.hypotheses.mostly_protected = false;
            let report = solver::solve(&obs, &cfg).expect("solvable");
            if !report.inferred.is_empty() {
                return Err(format!(
                    "inferred without protection: {:?}",
                    report.inferred
                ));
            }
            Ok(())
        },
    );
}

/// Very large λ suppresses all inference (Table 6's right edge).
#[test]
fn huge_lambda_suppresses() {
    check(
        &cases(64),
        gen_specs(8),
        |s| shrink_specs(s),
        |specs| {
            let obs = build_observations(specs);
            let mut cfg = SherLockConfig::default();
            cfg.lambda = 10_000.0;
            let report = solver::solve(&obs, &cfg).expect("solvable");
            if !report.inferred.is_empty() {
                return Err(format!("inferred under huge lambda: {:?}", report.inferred));
            }
            Ok(())
        },
    );
}

/// Racy pairs contribute nothing: if every window is racy, nothing is
/// inferred under race removal.
#[test]
fn all_racy_means_nothing_inferred() {
    check(
        &cases(64),
        gen_specs(8),
        |s| shrink_specs(s),
        |specs| {
            let mut all_racy = specs.clone();
            for s in &mut all_racy {
                s.racy = true;
            }
            let obs = build_observations(&all_racy);
            let report = solver::solve(&obs, &SherLockConfig::default()).expect("solvable");
            if !report.inferred.is_empty() {
                return Err(format!("inferred from racy-only: {:?}", report.inferred));
            }
            if report.num_windows != 0 {
                return Err(format!("num_windows = {}", report.num_windows));
            }
            Ok(())
        },
    );
}
