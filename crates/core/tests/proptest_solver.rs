//! Property tests for the Solver over randomized observation sets: the hard
//! properties of §4.2 must hold for *every* input, and outputs are valid
//! probabilities.

use proptest::prelude::*;
use sherlock_core::{solver, Observations, Role, SherLockConfig};
use sherlock_trace::windows::{Candidate, Window};
use sherlock_trace::{ObjectId, OpId, OpRef, ThreadId, Time};

#[derive(Clone, Debug)]
struct WindowSpec {
    pair_field: usize,
    rel_methods: Vec<usize>,
    acq_methods: Vec<usize>,
    counts: (u32, u32),
    racy: bool,
}

fn window_spec() -> impl Strategy<Value = WindowSpec> {
    (
        0usize..4,
        proptest::collection::vec(0usize..5, 0..3),
        proptest::collection::vec(0usize..5, 0..3),
        (1u32..4, 1u32..4),
        proptest::bool::weighted(0.15),
    )
        .prop_map(
            |(pair_field, rel_methods, acq_methods, counts, racy)| WindowSpec {
                pair_field,
                rel_methods,
                acq_methods,
                counts,
                racy,
            },
        )
}

fn field_ops(i: usize) -> (OpId, OpId) {
    (
        OpRef::field_write("PSol", format!("f{i}")).intern(),
        OpRef::field_read("PSol", format!("f{i}")).intern(),
    )
}

fn build_observations(specs: &[WindowSpec]) -> Observations {
    let mut obs = Observations::new();
    for (k, s) in specs.iter().enumerate() {
        let (w, r) = field_ops(s.pair_field);
        let mut release = vec![Candidate {
            op: w,
            count: s.counts.0,
        }];
        let mut acquire = vec![Candidate {
            op: r,
            count: s.counts.1,
        }];
        for &m in &s.rel_methods {
            release.push(Candidate {
                op: OpRef::app_end("PSol", format!("m{m}")).intern(),
                count: 1,
            });
        }
        for &m in &s.acq_methods {
            acquire.push(Candidate {
                op: OpRef::app_begin("PSol", format!("m{m}")).intern(),
                count: 1,
            });
        }
        release.sort_by_key(|c| c.op);
        release.dedup_by_key(|c| c.op);
        acquire.sort_by_key(|c| c.op);
        acquire.dedup_by_key(|c| c.op);
        let window = Window {
            a_op: w,
            b_op: r,
            a_thread: ThreadId(0),
            b_thread: ThreadId(1),
            a_time: Time::from_micros(10 * k as u64),
            b_time: Time::from_micros(10 * k as u64 + 5),
            object: ObjectId(1),
            release,
            acquire,
            release_capable: true,
            acquire_capable: true,
        };
        if s.racy {
            obs.mark_racy(window.pair());
        }
        obs.add_window(&window);
    }
    obs.finish_run();
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hard properties: probabilities in [0,1]; reads never release, writes
    /// never acquire, app begins never release, app ends never acquire; one
    /// op never holds both roles at once.
    #[test]
    fn hard_constraints_hold(specs in proptest::collection::vec(window_spec(), 0..10)) {
        let obs = build_observations(&specs);
        let report = solver::solve(&obs, &SherLockConfig::default()).expect("solvable");
        for (&(op, role), &p) in &report.probabilities {
            prop_assert!((0.0..=1.0 + 1e-7).contains(&p), "p out of range: {p}");
            let r = op.resolve();
            match role {
                Role::Release => prop_assert!(r.can_release(), "{r} released"),
                Role::Acquire => prop_assert!(r.can_acquire(), "{r} acquired"),
            }
        }
        for i in &report.inferred {
            let both = report.inferred.iter().any(|j| j.op == i.op && j.role != i.role);
            prop_assert!(!both, "op {} inferred in both roles", i.op);
        }
    }

    /// Solving twice over the same observations is deterministic.
    #[test]
    fn solving_is_deterministic(specs in proptest::collection::vec(window_spec(), 0..8)) {
        let obs = build_observations(&specs);
        let cfg = SherLockConfig::default();
        let a = solver::solve(&obs, &cfg).expect("solvable");
        let b = solver::solve(&obs, &cfg).expect("solvable");
        prop_assert_eq!(a.inferred, b.inferred);
    }

    /// With Mostly-Protected ablated, nothing is ever inferred.
    #[test]
    fn no_protection_no_inference(specs in proptest::collection::vec(window_spec(), 0..8)) {
        let obs = build_observations(&specs);
        let mut cfg = SherLockConfig::default();
        cfg.hypotheses.mostly_protected = false;
        let report = solver::solve(&obs, &cfg).expect("solvable");
        prop_assert!(report.inferred.is_empty());
    }

    /// Very large λ suppresses all inference (Table 6's right edge).
    #[test]
    fn huge_lambda_suppresses(specs in proptest::collection::vec(window_spec(), 0..8)) {
        let obs = build_observations(&specs);
        let mut cfg = SherLockConfig::default();
        cfg.lambda = 10_000.0;
        let report = solver::solve(&obs, &cfg).expect("solvable");
        prop_assert!(report.inferred.is_empty(), "{:?}", report.inferred);
    }

    /// Racy pairs contribute nothing: if every window is racy, nothing is
    /// inferred under race removal.
    #[test]
    fn all_racy_means_nothing_inferred(specs in proptest::collection::vec(window_spec(), 0..8)) {
        let mut all_racy = specs.clone();
        for s in &mut all_racy {
            s.racy = true;
        }
        let obs = build_observations(&all_racy);
        let report = solver::solve(&obs, &SherLockConfig::default()).expect("solvable");
        prop_assert!(report.inferred.is_empty());
        prop_assert_eq!(report.num_windows, 0);
    }
}
