//! SherLock-rs workspace façade: re-exports of the crates the examples and
//! integration tests exercise.
//!
//! Library users should depend on the individual crates
//! ([`sherlock_core`], [`sherlock_sim`], …); this crate exists so the
//! repository-level examples and cross-crate integration tests have a single
//! package to live in.

pub use sherlock_apps as apps;
pub use sherlock_core as core;
pub use sherlock_lp as lp;
pub use sherlock_racer as racer;
pub use sherlock_serve as serve;
pub use sherlock_sim as sim;
pub use sherlock_trace as trace;
pub use sherlock_tsvd as tsvd;
