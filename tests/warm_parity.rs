//! Warm-start parity: multi-round inference with the session basis carried
//! between rounds must render *byte-identical* reports to forcing every
//! solve cold, across the bundled app suite and a generated fleet sample —
//! while spending strictly fewer simplex pivots.
//!
//! Everything runs inside one `#[test]` because the pivot accounting reads
//! the process-global `lp.pivots` histogram: a second concurrently-running
//! test in this binary would pollute the warm/cold deltas.

use sherlock_apps::all_apps;
use sherlock_core::{SherLock, SherLockConfig, TestCase};
use sherlock_fleet::{generate, GrammarConfig};

const ROUNDS: usize = 3;
const FLEET_SAMPLE: usize = 16;

/// Renders a full multi-round inference and returns the report plus the
/// `lp.pivots` and `lp.warm_hits` deltas it spent.
fn run(tests: &[TestCase], base_seed: u64, warm: bool) -> (String, u64, u64) {
    let pivots = sherlock_obs::histogram("lp.pivots");
    let hits = sherlock_obs::counter("lp.warm_hits");
    let (p0, h0) = (pivots.sum(), hits.get());
    let mut cfg = SherLockConfig::default();
    cfg.base_seed = base_seed;
    cfg.warm_start = warm;
    let report = SherLock::new(cfg)
        .run_rounds(tests, ROUNDS)
        .expect("inference must solve")
        .render();
    (report, pivots.sum() - p0, hits.get() - h0)
}

#[test]
fn warm_start_matches_cold_and_saves_pivots() {
    let mut warm_pivots_total = 0u64;
    let mut cold_pivots_total = 0u64;
    let mut warm_hits_total = 0u64;
    let mut apps_checked = 0usize;

    let mut check_app = |id: &str, tests: &[TestCase], base_seed: u64| {
        let (cold_render, cold_pivots, _) = run(tests, base_seed, false);
        let (warm_render, warm_pivots, warm_hits) = run(tests, base_seed, true);
        assert_eq!(
            cold_render, warm_render,
            "{id}: warm-started inference diverged from cold-solved inference"
        );
        warm_pivots_total += warm_pivots;
        cold_pivots_total += cold_pivots;
        warm_hits_total += warm_hits;
        apps_checked += 1;
    };

    for app in all_apps() {
        check_app(app.id, &app.tests, 0);
    }
    for i in 0..FLEET_SAMPLE {
        let app = generate(&GrammarConfig::default(), 0x3a3a_0000 + i as u64);
        check_app(&app.id, &app.tests, app.seed);
    }

    assert!(
        apps_checked >= 8 + FLEET_SAMPLE,
        "expected the bundled suite plus the fleet sample, got {apps_checked}"
    );
    assert!(
        warm_hits_total > 0,
        "warm runs never actually warm-started a solve"
    );
    assert!(
        warm_pivots_total < cold_pivots_total,
        "warm starts must strictly reduce total pivots: \
         warm {warm_pivots_total} vs cold {cold_pivots_total}"
    );
    println!(
        "warm parity over {apps_checked} apps: pivots {warm_pivots_total} warm \
         vs {cold_pivots_total} cold ({warm_hits_total} warm-started solves)"
    );
}
