//! Golden seed-corpus regression: inference over every bundled application
//! must be byte-stable — the same (app, base seed) pair rendered twice in
//! the same process yields identical reports — and, after normalization, the
//! reports must match the golden files committed under `tests/golden/`.
//!
//! The golden comparison extends the in-process stability checks across
//! process and machine boundaries: any drift in the Observer, window
//! extraction, the LP solve, or report rendering shows up as a diff against
//! a committed file, with the offending corpus entry named in the failure.
//!
//! Blessing: after an *intentional* inference change, regenerate the corpus
//! with
//!
//! ```text
//! SHERLOCK_BLESS=1 cargo test -q --test golden_corpus
//! ```
//!
//! and commit the rewritten files. (libtest rejects unknown CLI flags, so
//! the bless switch rides in an environment variable rather than a
//! `--bless` argument.)
//!
//! Normalization: rendered reports order sites by `OpId`, which is intern
//! order — a per-process accident. Golden files store the *sorted lines* of
//! the render, which is stable across processes while still pinning every
//! byte of every line.

use std::fs;
use std::path::{Path, PathBuf};

use sherlock_apps::all_apps;
use sherlock_core::{infer_seeded, SherLock, SherLockConfig};
use sherlock_fleet::{generate, GrammarConfig};

const SEEDS: [u64; 5] = [0, 1, 2, 3, 4];
// Two rounds keep the full sweep inside a few seconds while still
// exercising the Perturber's delay-injection path (round 2 runs with
// refined windows from round 1).
const ROUNDS: usize = 2;
// Generated fleet members pinned into the corpus alongside the bundled
// apps, so the generator's output is regression-locked too.
const FLEET_SEEDS: [u64; 2] = [0x901d_0001, 0xf1ee7];

fn render_inference(app: &sherlock_apps::App, seed: u64) -> String {
    let mut cfg = SherLockConfig::default();
    cfg.base_seed = seed;
    let report = SherLock::new(cfg)
        .run_rounds(&app.tests, ROUNDS)
        .unwrap_or_else(|e| panic!("{} seed {seed}: solver failed: {e:?}", app.id));
    report.render()
}

/// Sorts the report's lines: byte-stable across processes regardless of
/// intern order.
fn normalized(render: &str) -> String {
    let mut lines: Vec<&str> = render.lines().collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var("SHERLOCK_BLESS").is_ok_and(|v| v == "1")
}

/// One corpus entry: a name and its normalized render at base seed 0.
fn corpus() -> Vec<(String, String)> {
    let mut entries: Vec<(String, String)> = all_apps()
        .into_iter()
        .map(|app| (app.id.to_string(), normalized(&render_inference(&app, 0))))
        .collect();
    for seed in FLEET_SEEDS {
        let app = generate(&GrammarConfig::default(), seed);
        let report = infer_seeded(&app.tests, ROUNDS, app.seed)
            .unwrap_or_else(|e| panic!("{}: solver failed: {e:?}", app.id));
        entries.push((app.id.clone(), normalized(&report.render())));
    }
    entries
}

/// Every corpus entry matches its committed golden file byte-for-byte
/// (after normalization). `SHERLOCK_BLESS=1` rewrites the files instead.
#[test]
fn corpus_matches_golden_files() {
    let dir = golden_dir();
    let bless = blessing();
    if bless {
        fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut blessed = 0;
    for (name, content) in corpus() {
        let path = dir.join(format!("{name}.txt"));
        if bless {
            fs::write(&path, &content).unwrap_or_else(|e| panic!("bless {name}: {e}"));
            blessed += 1;
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: no golden file at {} ({e}); run \
                 `SHERLOCK_BLESS=1 cargo test -q --test golden_corpus` and \
                 commit the result",
                path.display()
            )
        });
        assert_eq!(
            golden,
            content,
            "{name}: inference drifted from {} — if intentional, re-bless \
             with SHERLOCK_BLESS=1",
            path.display()
        );
    }
    if bless {
        println!("blessed {blessed} golden file(s) in {}", dir.display());
    }
}

/// Running inference twice over the same app and seed renders byte-identical
/// output, for every app in the suite and every seed in the corpus.
#[test]
fn corpus_is_byte_stable_per_seed() {
    for app in all_apps() {
        for seed in SEEDS {
            let first = render_inference(&app, seed);
            let second = render_inference(&app, seed);
            assert_eq!(
                first, second,
                "{} is not byte-stable at seed {seed}",
                app.id
            );
            assert!(
                !first.is_empty(),
                "{} rendered an empty report at seed {seed}",
                app.id
            );
        }
    }
}

/// The corpus covers schedules that actually differ: across the seed set at
/// least one app must render at least two distinct reports. (If every seed
/// produced identical output the corpus would be vacuous as a regression
/// net for schedule-dependent behavior.)
#[test]
fn corpus_spans_distinct_schedules() {
    let mut any_app_varies = false;
    for app in all_apps() {
        let mut renders: Vec<String> = SEEDS
            .iter()
            .map(|&seed| render_inference(&app, seed))
            .collect();
        renders.sort();
        renders.dedup();
        if renders.len() > 1 {
            any_app_varies = true;
            break;
        }
    }
    assert!(
        any_app_varies,
        "every app rendered identical reports across all seeds — the corpus \
         does not exercise schedule-dependent inference"
    );
}
