//! Golden seed-corpus regression: inference over every bundled application
//! must be byte-stable — the same (app, base seed) pair rendered twice in
//! the same process yields identical reports, and the corpus of rendered
//! reports is identical across seeds only when the schedule genuinely does
//! not change what is observed. Any nondeterminism in the Observer, the LP
//! solve, or report rendering shows up here as a diff, with the app id and
//! seed in the failure message.

use sherlock_apps::all_apps;
use sherlock_core::{SherLock, SherLockConfig};

const SEEDS: [u64; 5] = [0, 1, 2, 3, 4];
// Two rounds keep the full 8-app x 5-seed sweep inside a few seconds while
// still exercising the Perturber's delay-injection path (round 2 runs with
// refined windows from round 1).
const ROUNDS: usize = 2;

fn render_inference(app: &sherlock_apps::App, seed: u64) -> String {
    let mut cfg = SherLockConfig::default();
    cfg.base_seed = seed;
    let report = SherLock::new(cfg)
        .run_rounds(&app.tests, ROUNDS)
        .unwrap_or_else(|e| panic!("{} seed {seed}: solver failed: {e:?}", app.id));
    report.render()
}

/// Running inference twice over the same app and seed renders byte-identical
/// output, for every app in the suite and every seed in the corpus.
#[test]
fn corpus_is_byte_stable_per_seed() {
    for app in all_apps() {
        for seed in SEEDS {
            let first = render_inference(&app, seed);
            let second = render_inference(&app, seed);
            assert_eq!(
                first, second,
                "{} is not byte-stable at seed {seed}",
                app.id
            );
            assert!(
                !first.is_empty(),
                "{} rendered an empty report at seed {seed}",
                app.id
            );
        }
    }
}

/// The corpus covers schedules that actually differ: across the seed set at
/// least one app must render at least two distinct reports. (If every seed
/// produced identical output the corpus would be vacuous as a regression
/// net for schedule-dependent behavior.)
#[test]
fn corpus_spans_distinct_schedules() {
    let mut any_app_varies = false;
    for app in all_apps() {
        let mut renders: Vec<String> = SEEDS
            .iter()
            .map(|&seed| render_inference(&app, seed))
            .collect();
        renders.sort();
        renders.dedup();
        if renders.len() > 1 {
            any_app_varies = true;
            break;
        }
    }
    assert!(
        any_app_varies,
        "every app rendered identical reports across all seeds — the corpus \
         does not exercise schedule-dependent inference"
    );
}
