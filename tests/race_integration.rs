//! Cross-crate integration: inference output driving the FastTrack detector
//! (the paper's §5.4 pipeline), plus suite-level invariants.

use sherlock_apps::{all_apps, app_by_id, Verdict};
use sherlock_core::{SherLock, SherLockConfig, TestCase};
use sherlock_racer::{detect, first_race, SyncSpec};
use sherlock_sim::api;
use sherlock_sim::prims::{Task, TracedVar};
use sherlock_sim::SimConfig;

/// A task-ordered handoff: Manual_dr (no TPL knowledge) reports a false
/// race; the spec built from SherLock's inference does not.
#[test]
fn inferred_spec_eliminates_manual_false_positive() {
    // Two sequential handoffs over disjoint fields through the same task
    // APIs: `Task.Wait`'s return is the shared acquire, whose happens-before
    // channel (the task object) matches the delegate-exit release.
    let tests = vec![TestCase::new("task_handoff", || {
        let a = TracedVar::new("RI.Handoff", "a", 0u32);
        let b = TracedVar::new("RI.Handoff", "b", 0u32);
        let (a2, b2) = (a.clone(), b.clone());
        let t = Task::run("RI.Handoff", "Producer", move || {
            a2.set(1);
            b2.set(2);
        });
        t.wait();
        for _ in 0..4 {
            assert_eq!(a.get(), 1);
            assert_eq!(b.get(), 2);
        }
        let c = TracedVar::new("RI.Handoff", "c", 0u32);
        let d = TracedVar::new("RI.Handoff", "d", 0u32);
        let (c2, d2) = (c.clone(), d.clone());
        let t = Task::run("RI.Handoff", "Producer", move || {
            c2.set(3);
            d2.set(4);
        });
        t.wait();
        for _ in 0..4 {
            assert_eq!(c.get(), 3);
            assert_eq!(d.get(), 4);
        }
    })];
    let mut sl = SherLock::new(SherLockConfig::default());
    sl.run_rounds(&tests, 3).expect("solver failed");
    let inferred = SyncSpec::from_report(sl.report());

    let run = tests[0].run(SimConfig::with_seed(77));
    assert!(
        !detect(&run.trace, &SyncSpec::manual()).is_empty(),
        "Manual_dr should false-positive on the task handoff"
    );
    assert!(
        detect(&run.trace, &inferred).is_empty(),
        "SherLock_dr should know the task ordering; spec: {inferred:?}"
    );
}

/// A seeded write/write race is witnessed (not inferred as sync) and both
/// detectors can see it; SherLock marks the pair racy.
#[test]
fn seeded_race_survives_inference_and_is_detected() {
    let tests = vec![TestCase::new("ww", || {
        let v = TracedVar::new("RI.Race", "counter", 0u32);
        let v2 = v.clone();
        let t = api::spawn("w", move || v2.set(1));
        v.set(2);
        t.join();
    })];
    let mut sl = SherLock::new(SherLockConfig::default());
    sl.run_rounds(&tests, 3).expect("solver failed");
    let inferred = SyncSpec::from_report(sl.report());

    let run = tests[0].run(SimConfig::with_seed(5));
    let race = first_race(&run.trace, &inferred).expect("race must be detected");
    assert!(race.location.starts_with("RI.Race::counter"));
    assert!(sl.report().racy_pairs >= 1);
}

/// Suite-level Table 2 invariants: every app yields true syncs; the
/// misclassification categories appear exactly where seeded.
#[test]
fn suite_scores_match_seeded_structure() {
    let cfg = SherLockConfig::default();
    for app in all_apps() {
        let mut sl = SherLock::new(cfg.clone());
        sl.run_rounds(&app.tests, 3).expect("solver failed");
        let report = sl.report();
        let verdicts: Vec<Verdict> = report
            .inferred
            .iter()
            .map(|i| app.truth.classify(i.op, i.role))
            .collect();
        let count = |v: Verdict| verdicts.iter().filter(|&&x| x == v).count();

        assert!(
            count(Verdict::TrueSync) >= 3,
            "{} found too few true syncs: {}",
            app.id,
            report.render()
        );
        let precision = count(Verdict::TrueSync) as f64 / verdicts.len().max(1) as f64;
        assert!(
            precision >= 0.4,
            "{} precision collapsed: {precision:.2}\n{}",
            app.id,
            report.render()
        );
        if !app.truth.hidden_classes.is_empty() {
            assert!(
                count(Verdict::InstrError) >= 1,
                "{} should show instrumentation errors",
                app.id
            );
        }
    }
}

/// Table 3 invariant: summed over the suite, SherLock_dr reports at least as
/// many true races and no more false races than Manual_dr.
#[test]
fn sherlock_dr_beats_manual_dr() {
    let cfg = SherLockConfig::default();
    let mut manual_true = 0;
    let mut manual_false = 0;
    let mut sherlock_true = 0;
    let mut sherlock_false = 0;
    for app in all_apps() {
        let mut sl = SherLock::new(cfg.clone());
        sl.run_rounds(&app.tests, 3).expect("solver failed");
        let inferred = SyncSpec::from_report(sl.report());
        let manual = app.truth.manual_spec();
        for (i, test) in app.tests.iter().enumerate() {
            let run = test.run(SimConfig::with_seed(0xD00D + i as u64));
            if let Some(r) = first_race(&run.trace, &manual) {
                if app.truth.is_true_race(&r.location) {
                    manual_true += 1;
                } else {
                    manual_false += 1;
                }
            }
            if let Some(r) = first_race(&run.trace, &inferred) {
                if app.truth.is_true_race(&r.location) {
                    sherlock_true += 1;
                } else {
                    sherlock_false += 1;
                }
            }
        }
    }
    assert!(
        sherlock_true > manual_true,
        "true races: sherlock {sherlock_true} vs manual {manual_true}"
    );
    assert!(
        sherlock_false < manual_false,
        "false races: sherlock {sherlock_false} vs manual {manual_false}"
    );
}

/// The app registry is coherent with inference: at least half of App-2's
/// ground-truth groups are recoverable (the smallest, cleanest app).
#[test]
fn app2_recall_is_high() {
    let app = app_by_id("App-2").unwrap();
    let mut sl = SherLock::new(SherLockConfig::default());
    sl.run_rounds(&app.tests, 3).expect("solver failed");
    let covered = app.truth.groups_covered(sl.report());
    assert!(
        covered * 2 >= app.truth.sync_groups.len(),
        "App-2 covered only {covered}/{}",
        app.truth.sync_groups.len()
    );
}
