//! End-to-end inference tests: for each synchronization idiom the paper
//! reports (Tables 8–9), a small program with known ground truth is run
//! through the full Observer → Solver → Perturber pipeline.

use sherlock_core::{Role, SherLock, SherLockConfig, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{
    ConcurrentMap, DataflowBlock, EventWaitHandle, GcHeap, Monitor, Semaphore, SimThread,
    StaticCtor, Task, TracedVar,
};
use sherlock_trace::{OpRef, Time};

fn infer(tests: Vec<TestCase>) -> sherlock_core::InferenceReport {
    SherLock::new(SherLockConfig::default())
        .run_rounds(&tests, 3)
        .expect("solver failed")
}

fn assert_release(report: &sherlock_core::InferenceReport, ops: &[OpRef]) {
    assert!(
        ops.iter()
            .any(|o| report.contains(o.intern(), Role::Release)),
        "none of {ops:?} inferred as release; got:\n{}",
        report.render()
    );
}

fn assert_acquire(report: &sherlock_core::InferenceReport, ops: &[OpRef]) {
    assert!(
        ops.iter()
            .any(|o| report.contains(o.intern(), Role::Acquire)),
        "none of {ops:?} inferred as acquire; got:\n{}",
        report.render()
    );
}

#[test]
fn infers_flag_variable_sync() {
    let report = infer(vec![TestCase::new("flag", || {
        let flag = TracedVar::new("E2E.Flag", "ready", false);
        let f = flag.clone();
        let t = SimThread::start("E2E.Flag", "Setter", move || {
            api::sleep(Time::from_millis(1));
            f.set(true);
        });
        flag.spin_until(Time::from_micros(300), |v| v);
        t.join();
    })]);
    assert_release(&report, &[OpRef::field_write("E2E.Flag", "ready")]);
    assert_acquire(&report, &[OpRef::field_read("E2E.Flag", "ready")]);
}

#[test]
fn infers_monitor_lock_sync() {
    let report = infer(vec![TestCase::new("monitor", || {
        let m = Monitor::new();
        let vs: Vec<_> = (0..3)
            .map(|i| TracedVar::new("E2E.Lock", format!("v{i}"), 0u32))
            .collect();
        let (m2, vs2) = (m.clone(), vs.clone());
        let t = SimThread::start("E2E.Lock", "Worker", move || {
            for _ in 0..3 {
                m2.with_lock(|| {
                    for v in &vs2 {
                        v.update(|x| x + 1);
                    }
                });
            }
        });
        for _ in 0..3 {
            m.with_lock(|| {
                for v in &vs {
                    v.update(|x| x + 1);
                }
            });
        }
        t.join();
    })]);
    assert_release(
        &report,
        &[
            OpRef::lib_begin("System.Threading.Monitor", "Exit"),
            OpRef::lib_end("System.Threading.Monitor", "Exit"),
        ],
    );
    assert_acquire(
        &report,
        &[
            OpRef::lib_begin("System.Threading.Monitor", "Enter"),
            OpRef::lib_end("System.Threading.Monitor", "Enter"),
        ],
    );
}

#[test]
fn infers_event_wait_handle_sync() {
    let report = infer(vec![TestCase::new("event", || {
        let ev = EventWaitHandle::new(false);
        let a = TracedVar::new("E2E.Event", "payloadA", 0u32);
        let b = TracedVar::new("E2E.Event", "payloadB", 0u32);
        let (e2, a2, b2) = (ev.clone(), a.clone(), b.clone());
        let t = SimThread::start("E2E.Event", "Producer", move || {
            a2.set(1);
            b2.set(2);
            e2.set();
        });
        ev.wait_one();
        for _ in 0..3 {
            assert_eq!(a.get(), 1);
            assert_eq!(b.get(), 2);
        }
        t.join();
    })]);
    assert_release(
        &report,
        &[
            OpRef::lib_begin("System.Threading.EventWaitHandle", "Set"),
            OpRef::lib_end("System.Threading.EventWaitHandle", "Set"),
        ],
    );
    assert_acquire(
        &report,
        &[
            OpRef::lib_begin("System.Threading.WaitHandle", "WaitOne"),
            OpRef::lib_end("System.Threading.WaitHandle", "WaitOne"),
        ],
    );
}

#[test]
fn infers_task_continuation_sync() {
    let report = infer(vec![TestCase::new("continuation", || {
        let x = TracedVar::new("E2E.Cont", "x", 0u32);
        let y = TracedVar::new("E2E.Cont", "y", 0u32);
        let (x1, y1) = (x.clone(), y.clone());
        let a1 = Task::run("E2E.Cont", "A1", move || {
            x1.set(5);
            y1.set(6);
        });
        let (x2, y2) = (x.clone(), y.clone());
        let a2 = a1.continue_with("E2E.Cont", "A2", move || {
            for _ in 0..3 {
                assert_eq!(x2.get(), 5);
                assert_eq!(y2.get(), 6);
            }
        });
        a2.wait();
    })]);
    assert_release(&report, &[OpRef::app_end("E2E.Cont", "A1")]);
    assert_acquire(&report, &[OpRef::app_begin("E2E.Cont", "A2")]);
}

#[test]
fn infers_dataflow_block_sync() {
    let report = infer(vec![TestCase::new("dataflow", || {
        // Fig. 3.A: the poster publishes state the handler consumes, and the
        // receiver consumes state the handler produces.
        let config = TracedVar::new("E2E.FlowState", "scaleFactor", 0u32);
        let n = TracedVar::new("E2E.FlowState", "handled", 0u32);
        let sum = TracedVar::new("E2E.FlowState", "sum", 0u32);
        let (c2, n2, s2) = (config.clone(), n.clone(), sum.clone());
        let block = DataflowBlock::new("E2E.Flow", "Handler", move |x: u32| {
            let k = c2.get();
            n2.update(|v| v + 1);
            s2.update(|v| v + x * k);
            x
        });
        config.set(2);
        block.post(4);
        block.receive();
        api::sleep(Time::from_millis(2));
        // Metrics are consulted repeatedly — popular reads, rare syncs.
        for _ in 0..8 {
            assert_eq!(n.get(), 1);
            assert_eq!(sum.get(), 8);
        }
    })]);
    // Either the block APIs or the handler boundaries explain the ordering.
    assert_release(
        &report,
        &[
            OpRef::lib_begin("System.Threading.Tasks.Dataflow.DataflowBlock", "Post"),
            OpRef::lib_end("System.Threading.Tasks.Dataflow.DataflowBlock", "Post"),
            OpRef::app_end("E2E.Flow", "Handler"),
        ],
    );
    assert_acquire(
        &report,
        &[
            OpRef::lib_begin("System.Threading.Tasks.Dataflow.DataflowBlock", "Receive"),
            OpRef::lib_end("System.Threading.Tasks.Dataflow.DataflowBlock", "Receive"),
            OpRef::app_begin("E2E.Flow", "Handler"),
        ],
    );
}

#[test]
fn infers_static_ctor_sync() {
    let report = infer(vec![TestCase::new("cctor", || {
        let cctor = StaticCtor::new("E2E.Init");
        let a = TracedVar::new("E2E.Init", "tableA", 0u32);
        let b = TracedVar::new("E2E.Init", "tableB", 0u32);
        let mut hs = Vec::new();
        for i in 0..3 {
            let (c, a2, b2) = (cctor.clone(), a.clone(), b.clone());
            hs.push(SimThread::start("E2E.Init", "User", move || {
                c.ensure(|| {
                    api::sleep(Time::from_micros(150 * (i + 1)));
                    a2.set(1);
                    b2.set(2);
                });
                api::app_method("E2E.Init", "Use", a2.object(), || {
                    assert_eq!(a2.get(), 1);
                    assert_eq!(b2.get(), 2);
                });
            }));
        }
        for h in hs {
            h.join();
        }
    })]);
    assert_release(&report, &[OpRef::app_end("E2E.Init", ".cctor")]);
    assert_acquire(&report, &[OpRef::app_begin("E2E.Init", "Use")]);
}

#[test]
fn infers_finalizer_sync() {
    let report = infer(vec![TestCase::new("finalizer", || {
        let heap = GcHeap::new();
        let state = TracedVar::new("E2E.Gc", "state", 0u32);
        let extra = TracedVar::new("E2E.Gc", "extra", 0u32);
        let done = EventWaitHandle::new(false);
        api::app_method("E2E.Gc", "LastUse", state.object(), || {
            state.set(9);
            extra.set(10);
        });
        let (s2, x2, d2) = (state.clone(), extra.clone(), done.clone());
        let reg = heap.register("E2E.Gc", "Finalize", state.object(), move || {
            assert_eq!(s2.get(), 9);
            assert_eq!(x2.get(), 10);
            d2.set_untraced();
        });
        heap.drop_last_ref(reg, Time::from_millis(3));
        done.wait_one_untraced();
    })]);
    assert_release(&report, &[OpRef::app_end("E2E.Gc", "LastUse")]);
    assert_acquire(&report, &[OpRef::app_begin("E2E.Gc", "Finalize")]);
}

#[test]
fn infers_get_or_add_sync() {
    let report = infer(vec![TestCase::new("getoradd", || {
        let map: ConcurrentMap<u32, u32> = ConcurrentMap::new();
        let a = TracedVar::new("E2E.Map", "cachedA", 0u32);
        let b = TracedVar::new("E2E.Map", "cachedB", 0u32);
        let mut hs = Vec::new();
        for _ in 0..2 {
            // Both callers pass the same source-level lambda.
            let (m, a2, b2) = (map.clone(), a.clone(), b.clone());
            hs.push(SimThread::start("E2E.Map", "Caller", move || {
                m.get_or_add(1, "E2E.Map", "<Fill>d", || {
                    a2.set(7);
                    b2.set(8);
                    7
                });
                for _ in 0..6 {
                    let _ = a2.get();
                    let _ = b2.get();
                }
            }));
        }
        for h in hs {
            h.join();
        }
    })]);
    // Some boundary of the atomic region must hold both roles.
    assert_release(
        &report,
        &[
            OpRef::lib_begin(
                "System.Collections.Concurrent.ConcurrentDictionary",
                "GetOrAdd",
            ),
            OpRef::lib_end(
                "System.Collections.Concurrent.ConcurrentDictionary",
                "GetOrAdd",
            ),
            OpRef::app_end("E2E.Map", "<Fill>d"),
        ],
    );
}

#[test]
fn infers_semaphore_sync() {
    let report = infer(vec![TestCase::new("semaphore", || {
        let sem = Semaphore::new(0);
        let a = TracedVar::new("E2E.Sem", "slotA", 0u32);
        let b = TracedVar::new("E2E.Sem", "slotB", 0u32);
        let (s2, a2, b2) = (sem.clone(), a.clone(), b.clone());
        let t = SimThread::start("E2E.Sem", "Filler", move || {
            a2.set(1);
            b2.set(2);
            s2.release(1);
        });
        sem.wait_one();
        for _ in 0..3 {
            assert_eq!(a.get(), 1);
            assert_eq!(b.get(), 2);
        }
        t.join();
    })]);
    assert_release(
        &report,
        &[
            OpRef::lib_begin("System.Threading.Semaphore", "Release"),
            OpRef::lib_end("System.Threading.Semaphore", "Release"),
        ],
    );
    assert_acquire(
        &report,
        &[
            OpRef::lib_begin("System.Threading.Semaphore", "WaitOne"),
            OpRef::lib_end("System.Threading.Semaphore", "WaitOne"),
        ],
    );
}

#[test]
fn inference_is_deterministic() {
    fn mk_tests() -> Vec<TestCase> {
        vec![TestCase::new("det", || {
            let flag = TracedVar::new("E2E.Det", "go", false);
            let f = flag.clone();
            let t = SimThread::start("E2E.Det", "W", move || f.set(true));
            flag.spin_until(Time::from_micros(200), |v| v);
            t.join();
        })]
    }
    let a = infer(mk_tests());
    let b = infer(mk_tests());
    assert_eq!(a.inferred, b.inferred);
    assert_eq!(a.probabilities, b.probabilities);
}

#[test]
fn pure_race_is_pruned_not_inferred() {
    // A write/write race has no acquire-capable window side: SherLock must
    // witness the race and refuse to call anything a synchronization.
    let report = infer(vec![TestCase::new("ww-race", || {
        let v = TracedVar::new("E2E.Race", "ww", 0u32);
        let v2 = v.clone();
        let t = api::spawn("racer", move || v2.set(1));
        v.set(2);
        t.join();
    })]);
    assert!(
        !report.contains_op(OpRef::field_write("E2E.Race", "ww").intern()),
        "{}",
        report.render()
    );
    assert!(report.racy_pairs >= 1);
}

#[test]
fn hidden_methods_never_appear_in_reports() {
    let report = infer(vec![TestCase::new("hidden", || {
        let v = TracedVar::new("E2E.Hidden", "x", 0u32);
        let ev = EventWaitHandle::new(false);
        let (v2, e2) = (v.clone(), ev.clone());
        let t = api::spawn("w", move || {
            api::app_method("E2E.Hidden", "<Go>b__hidden9", 1, || {
                v2.set(4);
                e2.set_untraced();
            });
        });
        ev.wait_one_untraced();
        v.get();
        t.join();
    })]);
    let hidden_b = OpRef::app_begin("E2E.Hidden", "<Go>b__hidden9").intern();
    let hidden_e = OpRef::app_end("E2E.Hidden", "<Go>b__hidden9").intern();
    assert!(!report.contains_op(hidden_b) && !report.contains_op(hidden_e));
}

#[test]
fn rounds_accumulate_windows() {
    let tests = vec![TestCase::new("acc", || {
        let flag = TracedVar::new("E2E.Acc", "f", false);
        let f = flag.clone();
        let t = SimThread::start("E2E.Acc", "W", move || f.set(true));
        flag.spin_until(Time::from_micros(150), |v| v);
        t.join();
    })];
    let mut sl = SherLock::new(SherLockConfig::default());
    sl.run_round(&tests).unwrap();
    let after1 = sl.observations().windows().len();
    sl.run_round(&tests).unwrap();
    let after2 = sl.observations().windows().len();
    assert!(after2 >= after1);
    assert_eq!(sl.rounds_completed(), 2);
    assert_eq!(sl.observations().runs(), 2);
}
