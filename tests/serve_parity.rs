//! Incremental-solve parity: the service's sessioned accumulate-and-solve
//! path must be indistinguishable from batch inference. For every bundled
//! app, absorbing runs one at a time with a solve after each run k must
//! render a spec byte-identical to a fresh session absorbing runs 1..=k+1
//! in one go — i.e. incremental solving is an optimization, never a
//! semantic change. A second test proves the same parity over the real TCP
//! protocol.

use sherlock_apps::all_apps;
use sherlock_core::{Session, SherLockConfig};
use sherlock_serve::{spawn, Client, ServeConfig};
use sherlock_sim::SimConfig;
use sherlock_trace::Trace;

const SEEDS: [u64; 2] = [11, 12];

/// Each app's tests run once per seed, under the default instrumentation.
fn runs_for(app: &sherlock_apps::App) -> Vec<Trace> {
    let cfg = SherLockConfig::default();
    let mut traces = Vec::new();
    for seed in SEEDS {
        for (i, test) in app.tests.iter().enumerate() {
            let mut sim_cfg =
                SimConfig::with_seed(seed.wrapping_mul(0x5DEECE66D).wrapping_add(i as u64));
            sim_cfg.instrument = cfg.instrument.clone();
            traces.push(test.run(sim_cfg).trace);
        }
    }
    traces
}

fn from_scratch_render(traces: &[Trace], upto: usize) -> String {
    let mut session = Session::new(SherLockConfig::default());
    for t in &traces[..upto] {
        session.absorb_trace(t);
    }
    session.solve().expect("solve").render()
}

/// In-process parity, every app: after every absorbed run, the incremental
/// session's solve equals a from-scratch session over the same prefix.
#[test]
fn incremental_solve_matches_from_scratch_for_all_apps() {
    for app in all_apps() {
        let traces = runs_for(&app);
        let mut incremental = Session::new(SherLockConfig::default());
        for (k, trace) in traces.iter().enumerate() {
            incremental.absorb_trace(trace);
            let inc = incremental.solve().expect("incremental solve").render();
            let scratch = from_scratch_render(&traces, k + 1);
            assert_eq!(
                inc,
                scratch,
                "{}: incremental solve after run {} diverged from from-scratch",
                app.id,
                k + 1
            );
        }
    }
}

/// Over-TCP parity, every app: the daemon's sessioned solve after each
/// absorbed run returns the same spec the in-process from-scratch session
/// renders.
#[test]
fn served_incremental_solve_matches_from_scratch_over_tcp() {
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".to_string();
    cfg.workers = 2;
    let server = spawn(cfg).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");

    for app in all_apps() {
        let traces = runs_for(&app);
        for (k, trace) in traces.iter().enumerate() {
            let r = client.absorb_trace(app.id, trace).expect("absorb");
            assert!(r.ok, "{}: absorb failed: {:?}", app.id, r.error);
            let solve = client.solve(app.id).expect("solve");
            assert!(solve.ok, "{}: solve failed: {:?}", app.id, solve.error);
            let served = solve.doc.get("spec").unwrap().as_str().unwrap();
            let scratch = from_scratch_render(&traces, k + 1);
            assert_eq!(
                served,
                scratch,
                "{}: served solve after run {} diverged from from-scratch",
                app.id,
                k + 1
            );
        }
    }

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.protocol_errors, 0);
}
