//! CI fleet gate: a fixed, deterministic 16-app sample of the generated
//! fleet must keep inference above the committed precision/recall floor.
//!
//! The full 200-app sweep lives in `cargo run --release --bin fleet`
//! (writing `results/BENCH_fleet.json`); this sampled gate is the cheap
//! always-on guard — any solver, observer, or perturber change that starts
//! misreading a planted idiom fails here with the per-idiom table in the
//! output.

use std::collections::BTreeSet;

use sherlock_fleet::{generate_fleet, score_fleet, GrammarConfig, Idiom};

const SAMPLE: usize = 16;
const BASE_SEED: u64 = 0xf1ee7;
const ROUNDS: usize = 2;
// Committed baseline: the sampled fleet currently scores 1.000/1.000; the
// floor leaves headroom for schedule jitter from intentional config
// changes, not for regressions.
const MIN_PRECISION: f64 = 0.95;
const MIN_RECALL: f64 = 0.95;

#[test]
fn sampled_fleet_meets_committed_baseline() {
    sherlock_sim::install_sim_panic_hook();
    let apps = generate_fleet(&GrammarConfig::default(), SAMPLE, BASE_SEED);
    // The sample itself must exercise a healthy slice of the grammar.
    let idioms: BTreeSet<Idiom> = apps
        .iter()
        .flat_map(|a| a.instances.iter().map(|i| i.idiom))
        .collect();
    assert!(
        idioms.len() >= 6,
        "the fixed sample covers only {} idiom classes: {idioms:?}",
        idioms.len()
    );

    let score = score_fleet(&apps, ROUNDS).expect("sampled fleet solves");
    println!("{}", score.render());
    assert!(
        score.precision() >= MIN_PRECISION,
        "fleet precision {:.3} fell below the committed baseline {MIN_PRECISION:.2}\n{}",
        score.precision(),
        score.render()
    );
    assert!(
        score.recall() >= MIN_RECALL,
        "fleet recall {:.3} fell below the committed baseline {MIN_RECALL:.2}\n{}",
        score.recall(),
        score.render()
    );
    // Every inferred op must trace back to a planted idiom — an
    // unattributed op means the generator and scorer disagree about what
    // exists, which would silently corrupt the per-idiom table.
    assert_eq!(score.unattributed, 0, "unattributed inferred ops");
}
