//! Acceptance tests for the schedule-exploration harness: PCT must buy real
//! schedule coverage over a single random-walk run, and exploration must be
//! deterministic — the same campaign yields the same distinct-schedule set
//! regardless of how many worker threads fan it out.

use std::collections::BTreeSet;

use sherlock_apps::{all_apps, App};
use sherlock_racer::detect;
use sherlock_sim::{ExploreConfig, Explorer, StrategyKind};

const CANARY: &str = "App-1";
const PCT_RUNS: u64 = 24;

fn canary() -> App {
    all_apps()
        .into_iter()
        .find(|a| a.id == CANARY)
        .expect("canary app exists")
}

/// Runs one exploration campaign per unit test and returns the stable
/// hashes of every distinct schedule in which FastTrack (under the
/// ground-truth spec) reports a seeded race.
fn racy_schedule_hashes(
    app: &App,
    strategy: StrategyKind,
    runs: u64,
    jobs: usize,
) -> BTreeSet<u64> {
    let ground = app.truth.full_spec();
    let mut racy = BTreeSet::new();
    for (t, test) in app.tests.iter().enumerate() {
        let mut ecfg = ExploreConfig::default();
        ecfg.runs = runs;
        // Same per-test seed-block layout as `sherlock explore`.
        ecfg.base_seed = (t as u64) << 32;
        ecfg.strategy = strategy;
        ecfg.jobs = jobs;
        let result = Explorer::new(ecfg).run(test.body());
        for report in &result.distinct {
            let seeded = detect(&report.trace, &ground)
                .iter()
                .any(|r| app.truth.is_true_race(&r.location));
            if seeded {
                racy.insert(report.trace.stable_hash());
            }
        }
    }
    racy
}

/// The headline acceptance property: PCT at depth 3 deterministically finds
/// at least two distinct racy schedules on the canary app that a single
/// random-walk run at seed 0 (the old one-seed workflow) does not see.
#[test]
fn pct_finds_racy_schedules_single_random_walk_misses() {
    let app = canary();
    let baseline = racy_schedule_hashes(&app, StrategyKind::RandomWalk, 1, 1);
    let pct = racy_schedule_hashes(&app, StrategyKind::Pct { depth: 3 }, PCT_RUNS, 0);
    let novel: BTreeSet<u64> = pct.difference(&baseline).copied().collect();
    assert!(
        novel.len() >= 2,
        "PCT found {} racy schedule(s) beyond the seed-0 random walk \
         (pct: {} racy, baseline: {} racy) — expected at least 2",
        novel.len(),
        pct.len(),
        baseline.len()
    );
}

/// The racy-schedule set a campaign discovers is a pure function of its
/// configuration: repeating the campaign — and changing only the worker
/// fan-out — reproduces the exact same hash set.
#[test]
fn exploration_is_deterministic_across_invocations_and_jobs() {
    let app = canary();
    let strategy = StrategyKind::Pct { depth: 3 };
    let first = racy_schedule_hashes(&app, strategy, PCT_RUNS, 1);
    let second = racy_schedule_hashes(&app, strategy, PCT_RUNS, 1);
    assert_eq!(first, second, "same campaign, different racy sets");
    let wide = racy_schedule_hashes(&app, strategy, PCT_RUNS, 4);
    assert_eq!(first, wide, "worker count changed the racy set");
}

/// Every strategy contributes: on the canary app each of the three
/// strategies discovers more than one distinct schedule across the suite,
/// i.e. none of them degenerates into replaying a single interleaving.
#[test]
fn every_strategy_expands_schedule_coverage() {
    let app = canary();
    for strategy in [
        StrategyKind::RandomWalk,
        StrategyKind::Pct { depth: 3 },
        StrategyKind::RoundRobin { quantum: 4 },
    ] {
        let mut distinct = BTreeSet::new();
        for (t, test) in app.tests.iter().enumerate() {
            let mut ecfg = ExploreConfig::default();
            ecfg.runs = 8;
            ecfg.base_seed = (t as u64) << 32;
            ecfg.strategy = strategy;
            let result = Explorer::new(ecfg).run(test.body());
            distinct.extend(result.distinct_hashes());
        }
        assert!(
            distinct.len() > 1,
            "strategy {} collapsed to {} distinct schedule(s)",
            strategy.name(),
            distinct.len()
        );
    }
}
