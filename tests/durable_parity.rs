//! Durable-session parity: a session rebuilt from its oplog (and/or
//! snapshot) must re-solve **byte-identical** to the session that absorbed
//! the traces live — for every bundled app and a spread of generated fleet
//! apps, both in-process and over the real TCP protocol across a daemon
//! restart.
//!
//! This is the acceptance test for the durable session tier: rehydration
//! replays traces into a *new process state* where operation ids intern in
//! a different order, so byte-parity here proves the whole solve pipeline
//! orders its work by resolved operation names rather than intern order
//! (see `sherlock_core::solver`). A final test proves LRU eviction with a
//! data directory is a spill, not a loss.

use std::path::PathBuf;

use sherlock_apps::all_apps;
use sherlock_core::SherLockConfig;
use sherlock_fleet::{generate, GrammarConfig};
use sherlock_serve::{spawn, Client, ServeConfig};
use sherlock_sim::SimConfig;
use sherlock_store::{SessionStore, StoreOptions};
use sherlock_trace::Trace;

/// Fleet members alongside the 8 bundled apps: the two corpus-pinned seeds
/// plus two fresh ones, so parity is not an artifact of goldens.
const FLEET_SEEDS: [u64; 4] = [0x901d_0001, 0xf1ee7, 0xacef_5eed, 42];

struct Workload {
    key: String,
    traces: Vec<Trace>,
}

/// Every bundled app and fleet seed, one instrumented run per unit test.
fn workloads() -> Vec<Workload> {
    let cfg = SherLockConfig::default();
    let mut out = Vec::new();
    let mut push = |key: String, tests: &[sherlock_core::TestCase]| {
        let traces = tests
            .iter()
            .enumerate()
            .map(|(i, test)| {
                let mut sim = SimConfig::with_seed(0xD00D + i as u64);
                sim.instrument = cfg.instrument.clone();
                test.run(sim).trace
            })
            .collect();
        out.push(Workload { key, traces });
    };
    for app in all_apps() {
        push(app.id.to_string(), &app.tests);
    }
    for seed in FLEET_SEEDS {
        let app = generate(&GrammarConfig::default(), seed);
        push(app.id.clone(), &app.tests);
    }
    out
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sherlock-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// In-process: absorb + solve live, drop the store with **no** graceful
/// persist (pure oplog — the crash path), reopen, and the rehydrated
/// session's solve must render byte-identically. A low snapshot cadence
/// makes most workloads exercise the snapshot-plus-log-tail path too.
#[test]
fn rehydrated_sessions_solve_byte_identically_in_process() {
    let dir = tmp_dir("inproc");
    let options = StoreOptions {
        data_dir: Some(dir.clone()),
        snapshot_every: 2,
        ..StoreOptions::default()
    };
    let loads = workloads();

    let mut live = Vec::new();
    {
        let store = SessionStore::open(SherLockConfig::default(), options.clone()).unwrap();
        for w in &loads {
            let spec = store.with_session(&w.key, |s| {
                for t in &w.traces {
                    s.absorb_trace(t);
                }
                s.solve().expect("live solve").render()
            });
            live.push(spec);
        }
        // Dropped without persist_all: rehydration must work from whatever
        // the write-ahead appends and cadence snapshots left behind.
    }

    let store = SessionStore::open(SherLockConfig::default(), options).unwrap();
    for (w, live_spec) in loads.iter().zip(&live) {
        let rebuilt = store.with_session(&w.key, |s| {
            assert_eq!(s.traces_absorbed(), w.traces.len(), "{}", w.key);
            s.solve().expect("rehydrated solve").render()
        });
        assert_eq!(
            &rebuilt, live_spec,
            "{}: rehydrated solve diverged from the live session",
            w.key
        );
    }
    assert_eq!(
        store.rehydrations(),
        loads.len() as u64,
        "every session came back from disk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Over TCP: a daemon absorbs and solves, drains, and a **new** daemon
/// process-state over the same data directory serves the identical spec on
/// a bare `solve` — the client never re-sends a trace. The restarted
/// daemon's `stats` verb must expose the `store.*` counters with
/// `store.rehydrations` counting every session.
#[test]
fn daemon_restart_serves_identical_specs_over_tcp() {
    let dir = tmp_dir("tcp");
    let cfg = |addr: String| {
        let mut c = ServeConfig::default();
        c.addr = addr;
        c.workers = 2;
        c.data_dir = Some(dir.clone());
        c
    };
    let loads = workloads();

    let mut live = Vec::new();
    {
        let server = spawn(cfg("127.0.0.1:0".into())).expect("spawn first daemon");
        let mut client = Client::connect(server.addr()).expect("connect");
        for w in &loads {
            for t in &w.traces {
                let r = client.absorb_trace(&w.key, t).expect("absorb");
                assert!(r.ok, "{}: absorb failed: {:?}", w.key, r.error);
            }
            let solve = client.solve(&w.key).expect("solve");
            assert!(solve.ok, "{}: solve failed: {:?}", w.key, solve.error);
            live.push(solve.doc.get("spec").unwrap().as_str().unwrap().to_string());
        }
        server.shutdown();
        server.join();
    }

    let server = spawn(cfg("127.0.0.1:0".into())).expect("spawn second daemon");
    let mut client = Client::connect(server.addr()).expect("connect");
    for (w, live_spec) in loads.iter().zip(&live) {
        let solve = client.solve(&w.key).expect("solve after restart");
        assert!(solve.ok, "{}: solve failed: {:?}", w.key, solve.error);
        assert_eq!(
            solve.doc.get("spec").unwrap().as_str().unwrap(),
            live_spec,
            "{}: restarted daemon served a different spec",
            w.key
        );
        assert_eq!(
            solve.doc.get("traces_absorbed").unwrap().as_u64().unwrap(),
            w.traces.len() as u64,
            "{}: rehydration lost traces",
            w.key
        );
    }
    let stats = client.stats().expect("stats");
    let counters = stats.doc.get("counters").expect("stats counters");
    let rehydrations = counters
        .get("store.rehydrations")
        .and_then(sherlock_obs::json::Json::as_u64)
        .expect("store.rehydrations counter present in stats");
    assert!(
        rehydrations >= loads.len() as u64,
        "expected every session rehydrated, saw {rehydrations}"
    );
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Eviction with a data directory is a spill: forcing the cap to 1 makes
/// every session bounce in and out of memory, and each still solves exactly
/// like an unbounded store absorbing the same traces.
#[test]
fn spill_to_disk_eviction_preserves_solve_parity() {
    let dir = tmp_dir("spill");
    let loads: Vec<Workload> = workloads().into_iter().take(4).collect();

    let unbounded = SessionStore::open(
        SherLockConfig::default(),
        StoreOptions {
            max_sessions: 0,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let bounced = SessionStore::open(
        SherLockConfig::default(),
        StoreOptions {
            max_sessions: 1,
            data_dir: Some(dir.clone()),
            ..StoreOptions::default()
        },
    )
    .unwrap();

    // Interleave by trace so every session is evicted (spilled) and
    // rehydrated repeatedly mid-stream.
    let max_traces = loads.iter().map(|w| w.traces.len()).max().unwrap();
    for i in 0..max_traces {
        for w in &loads {
            if let Some(t) = w.traces.get(i) {
                unbounded.with_session(&w.key, |s| {
                    s.absorb_trace(t);
                });
                bounced.with_session(&w.key, |s| {
                    s.absorb_trace(t);
                });
            }
        }
    }
    assert!(
        bounced.evictions() > 0 && bounced.rehydrations() > 0,
        "the cap of 1 must force spills and rehydrations"
    );
    for w in &loads {
        let want = unbounded.with_session(&w.key, |s| s.solve().expect("solve").render());
        let got = bounced.with_session(&w.key, |s| s.solve().expect("solve").render());
        assert_eq!(got, want, "{}: spilled session diverged", w.key);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
